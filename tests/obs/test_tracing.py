"""Tests for the span tracer, sinks, and the Stopwatch integration."""

import logging
import time

import pytest

from repro.obs.sinks import JsonlSink, LoggingSink, RingBufferSink, read_jsonl
from repro.obs.tracing import _NULL_SPAN, NULL_TRACER, NullTracer, Tracer
from repro.stats import Stopwatch


def make_tracer():
    sink = RingBufferSink()
    return Tracer(sinks=[sink]), sink


class TestSpans:
    def test_nesting_parent_and_depth(self):
        tracer, sink = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

        by_name = {r["name"]: r for r in sink.spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        # children are emitted before their parent (exit order)
        assert [r["name"] for r in sink.spans] == ["inner", "outer"]

    def test_span_times_enclosed_block(self):
        tracer, sink = make_tracer()
        with tracer.span("work"):
            time.sleep(0.01)
        [record] = sink.spans
        assert record["duration_ms"] >= 10.0

    def test_attrs_from_open_and_set(self):
        tracer, sink = make_tracer()
        with tracer.span("q", strategy="S") as span:
            span.set(case="case_b", boxes=3)
        [record] = sink.spans
        assert record["attrs"] == {"strategy": "S", "case": "case_b", "boxes": 3}

    def test_record_attaches_finished_child(self):
        tracer, sink = make_tracer()
        with tracer.span("parent"):
            tracer.record("stage.skyline", 12.5)
        child, parent = sink.spans
        assert child["name"] == "stage.skyline"
        assert child["duration_ms"] == 12.5
        assert child["parent_id"] == parent["span_id"]
        assert child["depth"] == 1

    def test_exception_still_emits_and_unwinds(self):
        tracer, sink = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert [r["name"] for r in sink.spans] == ["inner", "outer"]
        assert tracer.current() is None

    def test_multiple_sinks_receive_every_span(self):
        a, b = RingBufferSink(), RingBufferSink()
        tracer = Tracer(sinks=[a]).add_sink(b)
        with tracer.span("x"):
            pass
        assert len(a) == len(b) == 1


class TestSinks:
    def test_ring_buffer_caps_and_filters(self):
        sink = RingBufferSink(capacity=2)
        for i in range(3):
            sink.emit({"name": f"s{i}"})
        assert [r["name"] for r in sink.spans] == ["s1", "s2"]
        assert sink.named("s2") == [{"name": "s2"}]
        sink.clear()
        assert len(sink) == 0

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path)])
        with tracer.span("outer", plan="bitmap"):
            with tracer.span("inner"):
                pass
        tracer.close()
        records = read_jsonl(path)
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[1]["attrs"] == {"plan": "bitmap"}

    def test_jsonl_serializes_numpy_attrs(self, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"name": "s", "attrs": {"rows": np.int64(3), "ms": np.float64(1.5)}})
        sink.close()
        [record] = read_jsonl(path)
        assert record["attrs"] == {"rows": 3, "ms": 1.5}

    def test_logging_sink_renders_indented_line(self, caplog):
        logger = logging.getLogger("repro.obs.test")
        sink = LoggingSink(logger=logger, level=logging.INFO)
        with caplog.at_level(logging.INFO, logger="repro.obs.test"):
            sink.emit(
                {"name": "inner", "depth": 2, "duration_ms": 1.25, "attrs": {"k": 1}}
            )
        [message] = caplog.messages
        assert message == "    inner 1.250ms k=1"


class TestNullTracer:
    def test_returns_shared_span(self):
        tracer = NullTracer()
        span = tracer.span("anything", key="value")
        assert span is _NULL_SPAN
        assert tracer.record("x", 1.0) is _NULL_SPAN
        with span as s:
            assert s.set(a=1) is s
        assert NULL_TRACER.enabled is False


class TestStopwatchIntegration:
    def test_stage_duration_is_the_same_float_as_timings(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink])
        watch = Stopwatch(tracer=tracer)
        with watch.stage("skyline"):
            time.sleep(0.005)
        # emitted records round to 6 decimals (sub-nanosecond); the span
        # carries the very float accumulated into StageTimings
        [record] = sink.named("stage.skyline")
        assert record["duration_ms"] == round(watch.timings.skyline_ms, 6)

    def test_stage_totals_match_trace_totals(self):
        sink = RingBufferSink()
        watch = Stopwatch(tracer=Tracer(sinks=[sink]))
        for _ in range(3):
            with watch.stage("processing"):
                pass
        traced = sum(r["duration_ms"] for r in sink.named("stage.processing"))
        assert traced == pytest.approx(watch.timings.processing_ms, abs=1e-5)

    def test_rejects_total_pseudo_stage(self):
        # total_ms is a derived property, not a StageTimings field; the old
        # hasattr() check wrongly accepted it.
        with pytest.raises(ValueError):
            with Stopwatch().stage("total"):
                pass

    def test_untraced_stopwatch_still_works(self):
        watch = Stopwatch()
        with watch.stage("fetch_wall"):
            pass
        assert watch.timings.fetch_wall_ms >= 0.0
