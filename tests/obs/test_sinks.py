"""Tests for sink lifecycle guarantees (flush/close determinism)."""

import json

from repro.obs.sinks import JsonlSink, read_jsonl


class TestJsonlSinkLifecycle:
    def test_lines_are_flushed_before_close(self, tmp_path):
        """The file must be complete up to the last emit even without
        close() -- the early-exit guarantee."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"name": "a", "duration_ms": 1.0})
        sink.emit({"name": "b", "duration_ms": 2.0})
        # read back while the handle is still open, no close() yet
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["name"] == "b"
        sink.close()

    def test_context_manager_closes_handle(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"name": "a"})
            assert sink._handle is not None
        assert sink._handle is None
        assert read_jsonl(path) == [{"name": "a"}]

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.emit({"name": "a"})
        sink.close()
        sink.close()

    def test_emit_after_close_appends_instead_of_truncating(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"name": "a"})
        sink.close()
        sink.emit({"name": "b"})
        sink.close()
        assert [r["name"] for r in read_jsonl(path)] == ["a", "b"]

    def test_flush_without_handle_is_safe(self, tmp_path):
        JsonlSink(tmp_path / "trace.jsonl").flush()
