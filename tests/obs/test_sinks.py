"""Tests for sink lifecycle guarantees (flush/close determinism)."""

import json
import threading

import pytest

from repro.obs.sinks import JsonlSink, read_jsonl


class TestJsonlSinkLifecycle:
    def test_lines_are_flushed_before_close(self, tmp_path):
        """The file must be complete up to the last emit even without
        close() -- the early-exit guarantee."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"name": "a", "duration_ms": 1.0})
        sink.emit({"name": "b", "duration_ms": 2.0})
        # read back while the handle is still open, no close() yet
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["name"] == "b"
        sink.close()

    def test_context_manager_closes_handle(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"name": "a"})
            assert sink._handle is not None
        assert sink._handle is None
        assert read_jsonl(path) == [{"name": "a"}]

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.emit({"name": "a"})
        sink.close()
        sink.close()

    def test_emit_after_close_appends_instead_of_truncating(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"name": "a"})
        sink.close()
        sink.emit({"name": "b"})
        sink.close()
        assert [r["name"] for r in read_jsonl(path)] == ["a", "b"]

    def test_flush_without_handle_is_safe(self, tmp_path):
        JsonlSink(tmp_path / "trace.jsonl").flush()


class TestJsonlSinkConcurrency:
    def test_concurrent_writers_never_interleave_lines(self, tmp_path):
        """N threads x M records: every line must be one complete JSON
        object and every record must land exactly once."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        n_threads, n_records = 8, 250
        # long-ish payload so a torn write would be visible
        payload = "x" * 200

        def pump(worker):
            for i in range(n_records):
                sink.emit({"worker": worker, "seq": i, "pad": payload})

        threads = [
            threading.Thread(target=pump, args=(w,)) for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()

        lines = path.read_text().splitlines()
        assert len(lines) == n_threads * n_records
        assert sink.emitted == n_threads * n_records
        seen = set()
        for line in lines:
            rec = json.loads(line)  # raises on any torn/interleaved line
            assert rec["pad"] == payload
            seen.add((rec["worker"], rec["seq"]))
        assert len(seen) == n_threads * n_records

    def test_concurrent_emit_and_close_is_safe(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        stop = threading.Event()

        def pump():
            while not stop.is_set():
                sink.emit({"name": "a"})

        t = threading.Thread(target=pump)
        t.start()
        for _ in range(20):
            sink.close()  # racing close: emit must reopen, never crash
        stop.set()
        t.join()
        sink.close()
        for rec in read_jsonl(path):
            assert rec == {"name": "a"}

    def test_records_flushed_even_when_the_run_raises(self, tmp_path):
        """The early-exit guarantee: whatever was emitted before an
        exception is on disk after close(), with no partial trailing line."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        with pytest.raises(RuntimeError):
            try:
                sink.emit({"name": "before-crash"})
                raise RuntimeError("boom")
            finally:
                sink.close()
        assert read_jsonl(path) == [{"name": "before-crash"}]
        assert sink._handle is None

    def test_unserializable_record_does_not_wedge_the_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        circular: dict = {}
        circular["self"] = circular
        with pytest.raises(ValueError):
            sink.emit(circular)
        sink.emit({"name": "after"})  # serialization failed outside the lock
        sink.close()
        assert read_jsonl(path) == [{"name": "after"}]
