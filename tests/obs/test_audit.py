"""Tests for the plan-accuracy auditor (explain-vs-execute calibration)."""

import json
import math

from repro.core.cbcs import CBCS
from repro.data.generator import generate
from repro.obs import Observability
from repro.obs.audit import (
    PlanAccuracyAuditor,
    main,
    render_summary,
    run_quick_audit,
)
from repro.obs.report import render_report
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator


class TestAuditor:
    def test_quick_workload_is_perfectly_predicted(self):
        summary, records = run_quick_audit(
            n_points=2000, ndim=3, n_queries=40, seed=3
        )
        assert summary["queries"] == len(records) == 45  # 40 + 5 repeats
        assert summary["case_accuracy"] == 1.0
        assert summary["range_query_accuracy"] == 1.0
        assert math.isfinite(summary["points_mare"])
        # exact repeats guarantee all three top-level outcomes appear
        cases = {r.actual_case for r in records}
        assert "miss" in cases
        assert "exact" in cases
        assert cases - {"miss", "exact"}, "no cache-hit refinement was audited"

    def test_metrics_flow_into_registry_and_report(self):
        obs = Observability()
        summary, _ = run_quick_audit(n_points=1000, n_queries=15, obs=obs)
        m = obs.metrics
        assert (
            m.counter_value("plan_case_predictions_total", outcome="correct")
            == summary["queries"]
        )
        assert m.counter_value("plan_case_predictions_total", outcome="wrong") == 0
        hist = m.histogram("plan_points_rel_error")
        assert hist is not None and hist.count == summary["queries"]
        text = render_report(m)
        assert "Plan accuracy (explain vs execute)" in text
        assert "100.0%" in text

    def test_keep_plans_serializes_boxes(self):
        _, records = run_quick_audit(n_points=1000, n_queries=10, keep_plans=True)
        assert all("case" in r.plan for r in records)
        miss = next(r for r in records if r.actual_case == "miss")
        assert len(miss.plan["boxes"]) == 1
        json.dumps([r.as_dict() for r in records], allow_nan=False)

    def test_auditor_over_explicit_engine(self):
        data = generate("independent", 1500, 3, seed=9)
        engine = CBCS(DiskTable(data))
        gen = WorkloadGenerator(data, seed=10)
        auditor = PlanAccuracyAuditor(engine)
        auditor.run(gen.exploratory_stream(12))
        summary = auditor.summary()
        assert summary["case_accuracy"] == 1.0
        assert summary["by_case"]

    def test_empty_summary(self):
        data = generate("independent", 100, 2, seed=0)
        auditor = PlanAccuracyAuditor(CBCS(DiskTable(data)))
        assert auditor.summary() == {"queries": 0}
        assert render_summary(auditor.summary()) == "(no queries audited)"


class TestAuditCli:
    def test_prints_calibration_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "audit.json"
        code = main(
            ["--points", "800", "--queries", "10", "--json", str(out), "--strict"]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "Plan accuracy" in text
        assert "100.0%" in text
        payload = json.loads(out.read_text())
        assert payload["summary"]["case_accuracy"] == 1.0
        assert payload["records"][0]["plan"]["boxes"]

    def test_usage_error(self):
        assert main(["--bogus"]) == 2
