"""Tests for directory-mode obs reporting (partial dirs must not traceback)."""

import json

import numpy as np
import pytest

from repro.core.cbcs import CBCS
from repro.geometry.constraints import Constraints
from repro.obs import Observability
from repro.obs.report import (
    main,
    render_health_section,
    render_obs_dir,
    render_report,
)
from repro.obs.sinks import JsonlSink
from repro.storage.table import DiskTable


def _write_metrics_json(directory):
    obs = Observability()
    rng = np.random.default_rng(0)
    engine = CBCS(DiskTable(rng.random((500, 3)), obs=obs), obs=obs)
    for _ in range(4):
        engine.query(
            Constraints(lo=rng.random(3) * 0.3, hi=0.5 + rng.random(3) * 0.5)
        )
    path = directory / "metrics.json"
    path.write_text(json.dumps(obs.metrics.as_dict()))
    engine.close()
    return path


class TestRenderObsDir:
    def test_empty_dir_warns_for_every_artifact(self, tmp_path):
        text, warnings, rendered = render_obs_dir(tmp_path)
        assert rendered == 0
        assert text == ""
        warned = "\n".join(warnings)
        for name in ("metrics.json", "trace.jsonl", "metrics.prom"):
            assert name in warned
        assert all(w.startswith("warning: ") for w in warnings)

    def test_partial_dir_renders_what_exists(self, tmp_path):
        _write_metrics_json(tmp_path)
        text, warnings, rendered = render_obs_dir(tmp_path)
        assert rendered == 1
        assert "Queries and I/O per method" in text
        warned = "\n".join(warnings)
        assert "trace.jsonl" in warned and "metrics.json" not in warned

    def test_corrupt_metrics_is_a_warning_not_a_traceback(self, tmp_path):
        (tmp_path / "metrics.json").write_text("{not json")
        text, warnings, rendered = render_obs_dir(tmp_path)
        assert rendered == 0
        assert any(
            "metrics.json" in w and "unreadable" in w for w in warnings
        )

    def test_health_and_trace_sections(self, tmp_path):
        sink = JsonlSink(tmp_path / "health.jsonl")
        sink.emit(
            {
                "t_s": 1.0,
                "status": "healthy",
                "reasons": [],
                "window": {"qps": 10.0, "p95_ms": 4.0, "queries": 20},
            }
        )
        sink.close()
        trace = JsonlSink(tmp_path / "trace.jsonl")
        trace.emit({"name": "cbcs.query", "attrs": {"query_id": "q1"}})
        trace.emit({"name": "table.range_query", "attrs": {}})
        trace.close()
        text, warnings, rendered = render_obs_dir(tmp_path)
        assert rendered == 2
        assert "# health" in text and "last status: healthy" in text
        assert "# trace" in text and "1 carrying a query_id" in text

    def test_cache_and_profile_sections(self, tmp_path):
        (tmp_path / "cache.json").write_text(
            json.dumps(
                {
                    "items": 2,
                    "total_points": 7,
                    "total_bytes": 512,
                    "coverage_fraction": 0.25,
                    "hit_rate": 0.5,
                    "quarantined": 0,
                }
            )
        )
        (tmp_path / "profile.collapsed").write_text(
            "stage.skyline;sfs_skyline 120\n"
        )
        text, warnings, rendered = render_obs_dir(tmp_path)
        assert "# cache introspection" in text
        assert "collapsed stacks: 1 frames" in text


class TestHealthSection:
    def test_empty_records(self):
        assert "(no snapshots recorded)" in render_health_section([])

    def test_counts_status_history_and_last_reasons(self):
        records = [
            {"status": "healthy", "window": {}},
            {"status": "degraded", "reasons": ["p95 over SLO"], "window": {}},
        ]
        text = render_health_section(records)
        assert "last status: degraded (p95 over SLO)" in text
        assert "degraded: 1" in text and "healthy: 1" in text


class TestCLI:
    def test_directory_mode_success(self, tmp_path, capsys):
        _write_metrics_json(tmp_path)
        assert main([str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "Queries and I/O per method" in captured.out
        assert "warning:" in captured.err  # missing trace.jsonl etc.

    def test_directory_mode_nothing_renderable(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 2
        assert "no readable observability artifacts" in capsys.readouterr().out

    def test_single_file_mode_unchanged(self, tmp_path, capsys):
        path = _write_metrics_json(tmp_path)
        assert main([str(path)]) == 0
        assert "Queries and I/O per method" in capsys.readouterr().out

    def test_single_file_mode_bad_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2
        capsys.readouterr()

    def test_usage_error(self, capsys):
        assert main([]) == 2
        capsys.readouterr()


class TestRenderReportStillWorksOnRegistry:
    def test_registry_object_accepted(self):
        obs = Observability()
        rng = np.random.default_rng(1)
        engine = CBCS(DiskTable(rng.random((300, 3)), obs=obs), obs=obs)
        engine.query(Constraints(lo=np.zeros(3), hi=np.full(3, 0.6)))
        text = render_report(obs.metrics)
        assert "Queries and I/O per method" in text
        engine.close()
