"""Tests for the sampled per-stage cProfile harness."""

import marshal
import pstats
import threading

import numpy as np
import pytest

from repro.core.cbcs import CBCS
from repro.geometry.constraints import Constraints
from repro.obs import Observability
from repro.obs.profiling import QueryProfiler, collapse_stats
from repro.storage.table import DiskTable


def _burn(n=2000):
    return sum(i * i for i in range(n))


class TestSampling:
    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryProfiler(sample_every=0)

    def test_every_query_sampled_by_default(self):
        profiler = QueryProfiler()
        for _ in range(5):
            with profiler.maybe("q") as sampled:
                assert sampled
        assert profiler.sampled == profiler.seen == 5

    def test_sampling_cadence(self):
        profiler = QueryProfiler(sample_every=3)
        verdicts = []
        for _ in range(7):
            with profiler.maybe() as sampled:
                verdicts.append(sampled)
        assert verdicts == [True, False, False, True, False, False, True]
        assert profiler.sampled == 3 and profiler.seen == 7

    def test_sampled_query_ids_are_recorded(self):
        profiler = QueryProfiler(sample_every=2)
        for qid in ("q1", "q2", "q3"):
            with profiler.maybe(qid):
                pass
        assert profiler.sampled_query_ids == ["q1", "q3"]

    def test_is_active_only_inside_a_sampled_query(self):
        profiler = QueryProfiler()
        assert not profiler.is_active()
        with profiler.maybe("q"):
            assert profiler.is_active()
        assert not profiler.is_active()

    def test_busy_profiler_skips_concurrent_sampling(self):
        profiler = QueryProfiler()
        entered = threading.Event()
        release = threading.Event()
        verdicts = {}

        def holder():
            with profiler.maybe("held") as sampled:
                verdicts["holder"] = sampled
                entered.set()
                release.wait(5.0)

        t = threading.Thread(target=holder)
        t.start()
        assert entered.wait(5.0)
        with profiler.maybe("skipped") as sampled:
            verdicts["skipped"] = sampled
        release.set()
        t.join()
        assert verdicts == {"holder": True, "skipped": False}


class TestStageProfiles:
    def test_stage_accumulates_across_sampled_queries(self):
        profiler = QueryProfiler()
        for _ in range(2):
            with profiler.maybe("q"):
                with profiler.stage("skyline"):
                    _burn()
        stats = profiler.stats()
        assert stats is not None
        assert stats.total_calls > 0

    def test_unsampled_profiler_has_no_stats(self):
        assert QueryProfiler().stats() is None

    def test_collapsed_lines_are_rooted_at_stage_names(self):
        profiler = QueryProfiler()
        with profiler.maybe("q"):
            with profiler.stage("fetch_wall"):
                _burn()
            with profiler.stage("skyline"):
                _burn()
        lines = profiler.collapsed_lines()
        assert lines
        roots = {line.split(";", 1)[0] for line in lines}
        assert roots <= {"stage.fetch_wall", "stage.skyline"}
        for line in lines:
            frames, count = line.rsplit(" ", 1)
            assert frames and int(count) > 0


class TestCollapseStats:
    def test_collapsed_format_and_positive_counts(self):
        profiler = QueryProfiler()
        with profiler.maybe("q"):
            with profiler.stage("s"):
                _burn()
        lines = collapse_stats(profiler.stats(), root="root")
        assert lines
        for line in lines:
            frames, count = line.rsplit(" ", 1)
            assert frames.startswith("root;") or frames == "root"
            assert int(count) > 0
            assert "\n" not in frames


class TestSave:
    def test_save_writes_valid_pstats_and_collapsed(self, tmp_path):
        profiler = QueryProfiler()
        with profiler.maybe("q"):
            with profiler.stage("skyline"):
                _burn(20000)
        paths = profiler.save(tmp_path)
        stats = pstats.Stats(paths["pstats"])  # loadable => valid marshal
        assert stats.total_calls > 0
        collapsed = (tmp_path / "profile.collapsed").read_text()
        assert collapsed.strip()

    def test_save_is_valid_even_when_unsampled(self, tmp_path):
        paths = QueryProfiler(sample_every=10).save(tmp_path)
        pstats.Stats(paths["pstats"])  # must not raise
        with open(paths["pstats"], "rb") as handle:
            marshal.load(handle)  # raw marshal dict, as pstats expects
        assert (tmp_path / "profile.collapsed").read_text() == ""

    def test_render_summary_header(self):
        profiler = QueryProfiler(sample_every=2)
        with profiler.maybe("q"):
            with profiler.stage("s"):
                _burn()
        summary = profiler.render_summary()
        assert "sampled 1 of 1 queries" in summary
        assert "own ms" in summary

    def test_render_summary_without_samples(self):
        assert "no samples collected" in QueryProfiler().render_summary()


class TestEngineIntegration:
    def test_engine_routes_stages_through_attached_profiler(self):
        obs = Observability()
        obs.profiler = QueryProfiler(sample_every=1)
        rng = np.random.default_rng(0)
        engine = CBCS(DiskTable(rng.random((1000, 3)), obs=obs), obs=obs)
        for _ in range(4):
            engine.query(
                Constraints(
                    lo=rng.random(3) * 0.3, hi=0.5 + rng.random(3) * 0.5
                )
            )
        assert obs.profiler.sampled == 4
        assert len(obs.profiler.sampled_query_ids) == 4
        lines = obs.profiler.collapsed_lines()
        assert any(line.startswith("stage.") for line in lines)
        engine.close()

    def test_unattached_profiler_keeps_engine_unprofiled(self):
        obs = Observability()
        rng = np.random.default_rng(1)
        engine = CBCS(DiskTable(rng.random((200, 3)), obs=obs), obs=obs)
        engine.query(Constraints(lo=np.zeros(3), hi=np.full(3, 0.7)))
        assert obs.profiler is None
        engine.close()
