"""Tests for the cost-model calibration ledger."""

import json

import pytest

from repro.obs.calibration import STAGES, CalibrationLedger, render_calibration
from repro.obs.metrics import MetricsRegistry


def record(predicted, actual, case="case_c", strategy="MaxOverlapSP"):
    return {
        "case": case,
        "strategy": strategy,
        "predicted": predicted,
        "actual": actual,
    }


class TestLedgerMath:
    def test_exact_prediction_scores_zero(self):
        ledger = CalibrationLedger()
        cost = {"points": 10, "pages": 2, "seeks": 1, "io_ms": 5.0}
        assert ledger.add(record(cost, dict(cost)))
        assert ledger.queries == 1
        for stage in STAGES:
            assert ledger.mare(stage) == 0.0

    def test_relative_error_uses_actual_denominator(self):
        ledger = CalibrationLedger()
        ledger.add(
            record(
                {"points": 150, "pages": 4, "seeks": 1, "io_ms": 6.0},
                {"points": 100, "pages": 2, "seeks": 1, "io_ms": 4.0},
            )
        )
        assert ledger.mare("points") == pytest.approx(0.5)
        assert ledger.mare("pages") == pytest.approx(1.0)
        assert ledger.mare("io_ms") == pytest.approx(0.5)

    def test_zero_actual_divides_by_one(self):
        """Exact hits (0 predicted, 0 actual) must stay finite and clean."""
        ledger = CalibrationLedger()
        ledger.add(
            record(
                {"points": 3, "pages": 0, "seeks": 0, "io_ms": 0.0},
                {"points": 0, "pages": 0, "seeks": 0, "io_ms": 0.0},
            )
        )
        assert ledger.mare("points") == pytest.approx(3.0)  # |3-0|/max(0,1)
        assert ledger.mare("io_ms") == 0.0

    def test_missing_actual_is_skipped(self):
        ledger = CalibrationLedger()
        assert not ledger.add(record({"points": 1}, None))
        assert ledger.queries == 0
        assert ledger.skipped == 1
        assert ledger.mare("points") is None

    def test_errors_average_across_queries(self):
        ledger = CalibrationLedger()
        zeros = {"pages": 0, "seeks": 0, "io_ms": 0.0}
        ledger.add(record({"points": 100, **zeros}, {"points": 100, **zeros}))
        ledger.add(record({"points": 200, **zeros}, {"points": 100, **zeros}))
        assert ledger.mare("points") == pytest.approx(0.5)

    def test_per_case_and_per_strategy_cells(self):
        ledger = CalibrationLedger()
        zeros = {"pages": 0, "seeks": 0, "io_ms": 0.0}
        ledger.add(
            record({"points": 110, **zeros}, {"points": 100, **zeros},
                   case="case_c", strategy="A")
        )
        ledger.add(
            record({"points": 300, **zeros}, {"points": 100, **zeros},
                   case="miss", strategy="B")
        )
        assert ledger.mare("points", "case", "case_c") == pytest.approx(0.1)
        assert ledger.mare("points", "case", "miss") == pytest.approx(2.0)
        assert ledger.mare("points", "strategy", "A") == pytest.approx(0.1)
        assert ledger.mare("points", "case", "absent") is None


class TestSummaryAndGauges:
    def _ledger(self):
        ledger = CalibrationLedger()
        ledger.add(
            record(
                {"points": 150, "pages": 4, "seeks": 1, "io_ms": 6.0},
                {"points": 100, "pages": 2, "seeks": 1, "io_ms": 4.0},
            )
        )
        ledger.add(record({"points": 1}, None))  # skipped
        return ledger

    def test_summary_is_stamped_and_json_ready(self):
        summary = self._ledger().summary()
        assert summary["schema"] == 1
        assert summary["queries"] == 1
        assert summary["skipped"] == 1
        assert summary["overall"]["points"]["mare"] == pytest.approx(0.5)
        assert summary["overall"]["points"]["count"] == 1
        assert "case_c" in summary["per_case"]
        assert "MaxOverlapSP" in summary["per_strategy"]
        json.dumps(summary)

    def test_save_json_round_trips(self, tmp_path):
        path = tmp_path / "calibration.json"
        self._ledger().save_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == 1
        assert loaded["overall"]["pages"]["mare"] == pytest.approx(1.0)

    def test_export_gauges(self):
        reg = MetricsRegistry()
        self._ledger().export_gauges(reg)
        assert reg.gauge_value("calibration_queries") == 1.0
        assert reg.gauge_value("calibration_mare", stage="points") == pytest.approx(0.5)
        assert reg.gauge_value(
            "calibration_case_mare", case="case_c", stage="pages"
        ) == pytest.approx(1.0)
        assert reg.gauge_value(
            "calibration_strategy_mare", strategy="MaxOverlapSP", stage="io_ms"
        ) == pytest.approx(0.5)

    def test_empty_ledger_exports_only_query_count(self):
        reg = MetricsRegistry()
        CalibrationLedger().export_gauges(reg)
        assert reg.gauge_value("calibration_queries") == 0.0
        assert reg.gauge_value("calibration_mare", stage="points") is None


class TestRendering:
    def test_render_empty(self):
        text = render_calibration(CalibrationLedger().summary())
        assert "# calibration" in text
        assert "no calibrated queries" in text

    def test_render_populated(self):
        ledger = CalibrationLedger()
        ledger.add(
            record(
                {"points": 150, "pages": 4, "seeks": 1, "io_ms": 6.0},
                {"points": 100, "pages": 2, "seeks": 1, "io_ms": 4.0},
            )
        )
        text = render_calibration(ledger.summary())
        assert "# calibration" in text
        assert "Predicted-vs-actual error (overall)" in text
        assert "MARE per overlap case" in text
        assert "MARE per strategy" in text
        assert "0.500" in text  # points MARE


class TestShardCalibration:
    """Shard-pruning predicted-vs-actual surviving counts in the ledger."""

    def shard_record(self, predicted, actual):
        return {
            "shard_pruning": {
                "predicted_surviving": predicted,
                "actual_surviving": actual,
            }
        }

    def test_shard_only_record_counts_as_calibrated(self):
        ledger = CalibrationLedger()
        assert ledger.add(self.shard_record(4, 2))
        assert ledger.queries == 1
        assert ledger.skipped == 0

    def test_shard_mare(self):
        ledger = CalibrationLedger()
        ledger.add(self.shard_record(4, 2))  # |4-2|/2 = 1.0
        ledger.add(self.shard_record(3, 3))  # 0.0
        assert ledger.mare("surviving", dimension="shard") == pytest.approx(0.5)

    def test_zero_actual_uses_unit_denominator(self):
        ledger = CalibrationLedger()
        ledger.add(self.shard_record(2, 0))
        assert ledger.mare("surviving", dimension="shard") == pytest.approx(2.0)

    def test_summary_and_gauge(self):
        ledger = CalibrationLedger()
        ledger.add(self.shard_record(4, 4))
        summary = ledger.summary()
        assert summary["shard"]["surviving"]["count"] == 1
        assert summary["shard"]["surviving"]["mare"] == pytest.approx(0.0)
        metrics = MetricsRegistry()
        ledger.export_gauges(metrics)
        assert metrics.gauge_value(
            "calibration_shard_mare", stage="surviving"
        ) == pytest.approx(0.0)

    def test_unsharded_summary_has_empty_shard_section(self):
        ledger = CalibrationLedger()
        ledger.add(record({"points": 10}, {"points": 10}))
        assert ledger.summary()["shard"] == {}

    def test_render_includes_shard_table(self):
        ledger = CalibrationLedger()
        ledger.add(self.shard_record(4, 2))
        text = render_calibration(ledger.summary())
        assert "Shard-pruning prediction error" in text
        assert "surviving shards" in text
