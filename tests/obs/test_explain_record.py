"""Tests for per-query decision provenance (repro.obs.explain)."""

import json

import numpy as np

from repro.core.cbcs import CBCS
from repro.data.generator import generate
from repro.geometry.constraints import Constraints
from repro.obs import Observability
from repro.obs.calibration import CalibrationLedger
from repro.obs.explain import (
    ExplainRecorder,
    load_records,
    main,
    render_record,
    render_summary,
)
from repro.obs.sinks import JsonlSink
from repro.storage.table import DiskTable

DATA = generate("independent", 2000, 3, seed=42)

BASE = Constraints([0.2] * 3, [0.8] * 3)
REFINED = Constraints([0.2] * 3, [0.8, 0.8, 0.85])


def make_engine(recorder=None, **kwargs):
    obs = Observability()
    if recorder is not None:
        obs.explainer = recorder
    engine = CBCS(DiskTable(DATA.copy(), obs=obs), obs=obs, **kwargs)
    return engine, obs


class TestRecordStructure:
    def test_one_record_per_query_joined_by_id(self):
        recorder = ExplainRecorder(keep=16)
        engine, _ = make_engine(recorder)
        outcomes = [engine.query(BASE), engine.query(REFINED)]
        assert recorder.records_emitted == 2
        records = recorder.records
        for outcome, record in zip(outcomes, records):
            assert record["query_id"] == outcome.query_id
            assert record["case"] == outcome.case
            assert record["schema"] == 1
        engine.close()

    def test_miss_record_explains_empty_cache(self):
        recorder = ExplainRecorder(keep=4)
        engine, _ = make_engine(recorder)
        engine.query(BASE)
        [record] = recorder.records
        assert record["case"] == "miss"
        assert record["candidates"] == []
        assert record["no_candidates_reason"] == "empty-cache"
        # the single bounding box carries predicted AND actual cost
        [box] = record["boxes"]
        assert box["predicted"]["points"] > 0
        assert box["actual"]["points"] > 0
        assert box["actual"]["io_ms"] > 0
        assert record["actual"]["points"] == box["actual"]["points"]
        engine.close()

    def test_hit_record_scores_candidates_and_joins_actuals(self):
        recorder = ExplainRecorder(keep=8)
        engine, _ = make_engine(recorder)
        engine.query(BASE)
        engine.query(Constraints([0.1] * 3, [0.7] * 3))
        outcome = engine.query(REFINED)
        record = recorder.records[-1]
        assert record["query_id"] == outcome.query_id
        assert record["cache_hit"] is True
        candidates = record["candidates"]
        assert len(candidates) == 2
        assert candidates[0]["selected"] is True
        assert candidates[0]["rejection"] is None
        assert candidates[1]["selected"] is False
        assert candidates[1]["rejection"] == engine.strategy.rejection_reason
        for box in record["boxes"]:
            assert set(box["predicted"]) == {"points", "pages", "seeks", "io_ms"}
            assert box["actual"] is not None
        # the estimator upper-bounds the bitmap fetch per query
        assert record["actual"]["points"] <= record["predicted"]["points"]
        assert record["actual"]["points"] == outcome.io.points_read
        engine.close()

    def test_exact_hit_has_zero_boxes_and_zero_cost(self):
        recorder = ExplainRecorder(keep=8)
        engine, _ = make_engine(recorder)
        engine.query(BASE)
        engine.query(Constraints(BASE.lo, BASE.hi))
        record = recorder.records[-1]
        assert record["case"] == "exact"
        assert record["boxes"] == []
        assert record["predicted"]["points"] == 0
        assert record["actual"] == {
            "points": 0,
            "pages": 0,
            "seeks": 0,
            "io_ms": 0.0,
        }
        engine.close()

    def test_records_feed_the_calibration_ledger(self):
        ledger = CalibrationLedger()
        recorder = ExplainRecorder(ledger=ledger)
        engine, _ = make_engine(recorder)
        engine.query(BASE)
        engine.query(REFINED)
        assert ledger.queries == 2
        for stage in ("points", "pages", "io_ms"):
            mare = ledger.mare(stage)
            assert mare is not None and np.isfinite(mare)
        engine.close()

    def test_records_are_strict_json(self, tmp_path):
        path = tmp_path / "explain.jsonl"
        recorder = ExplainRecorder(sink=JsonlSink(path))
        engine, _ = make_engine(recorder)
        engine.query(BASE)
        engine.query(REFINED)
        recorder.close()
        records = load_records(path)
        assert len(records) == 2
        json.dumps(records)  # round-trips
        engine.close()


class TestBitIdentity:
    def test_explainer_is_bit_identical(self):
        queries = [
            BASE,
            REFINED,
            Constraints([0.1] * 3, [0.7] * 3),
            Constraints([0.15] * 3, [0.75, 0.8, 0.9]),
        ]
        plain_engine = CBCS(DiskTable(DATA.copy()))
        plain = [plain_engine.query(c) for c in queries]
        recorder = ExplainRecorder(keep=16)
        instrumented_engine, _ = make_engine(recorder)
        instrumented = [instrumented_engine.query(c) for c in queries]
        assert recorder.records_emitted == len(queries)
        for p, i in zip(plain, instrumented):
            assert np.array_equal(
                np.sort(p.skyline, axis=0), np.sort(i.skyline, axis=0)
            )
            assert p.io.as_dict() == i.io.as_dict()
            assert p.case == i.case
        plain_engine.close()
        instrumented_engine.close()


class TestRendering:
    def _records(self):
        recorder = ExplainRecorder(keep=8)
        engine, _ = make_engine(recorder)
        engine.query(BASE)
        engine.query(REFINED)
        engine.close()
        return recorder.records

    def test_render_summary_lists_every_query(self):
        records = self._records()
        text = render_summary(records)
        assert "Explain records (2 queries)" in text
        for record in records:
            assert record["query_id"] in text

    def test_render_record_shows_candidates_and_boxes(self):
        records = self._records()
        text = render_record(records[-1])
        assert "<selected>" in text
        assert "Plan boxes (predicted vs actual)" in text
        assert "totals: predicted" in text
        miss = render_record(records[0])
        assert "candidates: none (empty-cache)" in miss


class TestCLI:
    def _write(self, tmp_path):
        path = tmp_path / "explain.jsonl"
        recorder = ExplainRecorder(sink=JsonlSink(path), keep=8)
        engine, _ = make_engine(recorder)
        engine.query(BASE)
        engine.query(REFINED)
        recorder.close()
        engine.close()
        return recorder.records

    def test_summary_mode(self, tmp_path, capsys):
        self._write(tmp_path)
        assert main([str(tmp_path)]) == 0
        assert "Explain records" in capsys.readouterr().out

    def test_single_query_mode(self, tmp_path, capsys):
        records = self._write(tmp_path)
        qid = records[-1]["query_id"]
        assert main([str(tmp_path), qid]) == 0
        assert f"# explain {qid}" in capsys.readouterr().out

    def test_unknown_query_id(self, tmp_path, capsys):
        self._write(tmp_path)
        assert main([str(tmp_path), "q99999999"]) == 1
        capsys.readouterr()

    def test_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 2
        assert "no explain records" in capsys.readouterr().out

    def test_json_mode(self, tmp_path, capsys):
        self._write(tmp_path)
        assert main([str(tmp_path), "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert len(parsed) == 2


class TestShardedRecords:
    """Fleet-level explain records from the sharded engine."""

    def _sharded_records(self):
        from repro.core.sharded import ShardedCBCS
        from repro.storage.sharding import ShardedTable

        recorder = ExplainRecorder(keep=8)
        obs = Observability()
        obs.explainer = recorder
        engine = ShardedCBCS(ShardedTable(DATA.copy(), 4), obs=obs)
        engine.query(BASE)
        engine.query(Constraints([2.0] * 3, [3.0] * 3))  # all pruned
        engine.close()
        return recorder.records

    def test_record_carries_shard_pruning(self):
        records = self._sharded_records()
        shard = records[0]["shard_pruning"]
        assert shard["shards_total"] == 4
        assert (
            shard["shards_pruned"] + shard["shards_scanned"] == 4
        )
        assert len(shard["decisions"]) == 4
        assert {d["decision"] for d in shard["decisions"]} <= {
            "disjoint", "dominated", "surviving",
        }
        assert all("reason" in d for d in shard["decisions"])
        assert shard["predicted_surviving"] == shard["shards_scanned"]

    def test_all_pruned_record(self):
        records = self._sharded_records()
        shard = records[1]["shard_pruning"]
        assert shard["shards_scanned"] == 0
        assert shard["shards_pruned"] == 4
        assert shard["actual_surviving"] == 0
        assert records[1]["actual"]["points"] == 0

    def test_render_summary_has_shards_column(self):
        records = self._sharded_records()
        text = render_summary(records)
        assert "shards" in text
        assert "0/4" in text  # the all-pruned query

    def test_render_record_shows_pruning_table(self):
        records = self._sharded_records()
        text = render_record(records[0])
        assert "Shard pruning decisions" in text
        assert "shards:" in text
        # sharded fleet records must not claim an empty cache
        assert "candidates: none" not in text

    def test_records_are_json_serializable(self):
        for record in self._sharded_records():
            json.dumps(record)
