"""Statistical shape tests for the data generators."""

import numpy as np
import pytest

from repro.data.generator import (
    anticorrelated,
    correlated,
    generate,
    independent,
)
from repro.data.realestate import (
    COLUMNS,
    column_statistics,
    danish_real_estate,
)
from repro.skyline.sfs import sfs_skyline


class TestBasics:
    @pytest.mark.parametrize(
        "distribution", ["independent", "correlated", "anticorrelated"]
    )
    def test_shape_and_range(self, distribution):
        pts = generate(distribution, 500, 4, seed=1)
        assert pts.shape == (500, 4)
        assert np.all(pts >= 0.0) and np.all(pts <= 1.0)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            generate("zipf", 10, 2)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            independent(-1, 2)
        with pytest.raises(ValueError):
            independent(10, 0)
        with pytest.raises(ValueError):
            correlated(10, 2, spread=0.0)
        with pytest.raises(ValueError):
            anticorrelated(10, 2, spread=-1.0)

    def test_zero_points(self):
        assert generate("independent", 0, 3).shape == (0, 3)

    def test_seed_reproducibility(self):
        a = generate("correlated", 200, 3, seed=42)
        b = generate("correlated", 200, 3, seed=42)
        np.testing.assert_array_equal(a, b)
        c = generate("correlated", 200, 3, seed=43)
        assert not np.array_equal(a, c)

    def test_generator_object_accepted(self):
        rng = np.random.default_rng(5)
        pts = independent(10, 2, rng)
        assert pts.shape == (10, 2)


class TestDistributionShape:
    def test_correlated_has_high_pairwise_correlation(self):
        pts = correlated(5000, 3, seed=2)
        corr = np.corrcoef(pts.T)
        off_diag = corr[~np.eye(3, dtype=bool)]
        assert np.all(off_diag > 0.7)

    def test_anticorrelated_has_negative_pairwise_correlation(self):
        pts = anticorrelated(5000, 3, seed=3)
        corr = np.corrcoef(pts.T)
        off_diag = corr[~np.eye(3, dtype=bool)]
        assert np.all(off_diag < -0.1)

    def test_independent_near_zero_correlation(self):
        pts = independent(5000, 3, seed=4)
        corr = np.corrcoef(pts.T)
        off_diag = corr[~np.eye(3, dtype=bool)]
        assert np.all(np.abs(off_diag) < 0.1)

    def test_anticorrelated_sums_concentrated(self):
        pts = anticorrelated(2000, 4, seed=5)
        sums = pts.sum(axis=1)
        assert abs(sums.mean() - 2.0) < 0.1

    def test_skyline_size_ordering(self):
        """The canonical property: |sky(corr)| < |sky(indep)| < |sky(anti)|."""
        n, d, seed = 3000, 4, 6
        sizes = {
            kind: len(sfs_skyline(generate(kind, n, d, seed=seed)))
            for kind in ["independent", "correlated", "anticorrelated"]
        }
        assert sizes["correlated"] < sizes["independent"] < sizes["anticorrelated"]


class TestRealEstate:
    def test_shape_and_columns(self):
        data = danish_real_estate(1000, seed=1)
        assert data.shape == (1000, len(COLUMNS))

    def test_plausible_ranges(self):
        data = danish_real_estate(5000, seed=2)
        age, sqrm, valuation, price = data.T
        assert np.all(age >= 0) and np.all(age <= 155)
        assert np.all(sqrm >= 25) and np.all(sqrm <= 800)
        assert np.all(valuation > 0)
        assert np.all(price > 0)

    def test_price_valuation_strongly_correlated(self):
        data = danish_real_estate(5000, seed=3)
        corr = np.corrcoef(data[:, 2], data[:, 3])[0, 1]
        assert corr > 0.8

    def test_age_valuation_anticorrelated(self):
        data = danish_real_estate(5000, seed=4)
        corr = np.corrcoef(data[:, 0], data[:, 2])[0, 1]
        assert corr < -0.1

    def test_reproducible(self):
        np.testing.assert_array_equal(
            danish_real_estate(100, seed=9), danish_real_estate(100, seed=9)
        )

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            danish_real_estate(-5)

    def test_column_statistics(self):
        data = danish_real_estate(2000, seed=5)
        mean, std = column_statistics(data)
        np.testing.assert_allclose(mean, data.mean(axis=0))
        np.testing.assert_allclose(std, data.std(axis=0))
