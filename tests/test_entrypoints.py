"""Console entry points declared in pyproject.toml must import and run.

Parses ``[project.scripts]`` textually (the CI matrix includes Python 3.10,
which has no ``tomllib``), imports each target, and smoke-tests
``main(["--help"])`` so a typo'd module path or broken argparse wiring
fails here instead of at install time.
"""

import importlib
import re
from pathlib import Path

import pytest

PYPROJECT = Path(__file__).resolve().parent.parent / "pyproject.toml"

ENTRY_RE = re.compile(r'^([\w-]+)\s*=\s*"([\w.]+):(\w+)"\s*$')


def script_entries():
    entries = []
    in_scripts = False
    for line in PYPROJECT.read_text().splitlines():
        stripped = line.strip()
        if stripped.startswith("["):
            in_scripts = stripped == "[project.scripts]"
            continue
        if not in_scripts:
            continue
        match = ENTRY_RE.match(stripped)
        if match:
            entries.append(match.groups())
    return entries


ENTRIES = script_entries()


def test_scripts_section_present():
    names = [name for name, _, _ in ENTRIES]
    assert "repro-obs-report" in names
    assert "repro-obs-correlate" in names
    assert "repro-obs-explain" in names
    assert "repro-bench-history" in names


@pytest.mark.parametrize(
    "name,module,attr", ENTRIES, ids=[e[0] for e in ENTRIES]
)
def test_entry_point_imports_and_answers_help(name, module, attr, capsys):
    mod = importlib.import_module(module)
    func = getattr(mod, attr)
    assert callable(func)
    try:
        rc = func(["--help"])
    except SystemExit as exc:  # argparse --help raises SystemExit(0)
        rc = exc.code
    assert rc in (0, None)
    assert "usage" in capsys.readouterr().out.lower()
