"""Tests for :mod:`repro.stats`."""

import time

import numpy as np
import pytest

from repro.stats import QueryOutcome, StageTimings, Stopwatch
from repro.storage.pager import IOStats


class TestStageTimings:
    def test_total(self):
        t = StageTimings(
            processing_ms=1.0, fetch_io_ms=2.0, fetch_wall_ms=3.0, skyline_ms=4.0
        )
        assert t.total_ms == pytest.approx(10.0)

    def test_defaults_zero(self):
        assert StageTimings().total_ms == 0.0


class TestStopwatch:
    def test_accumulates_named_stage(self):
        watch = Stopwatch()
        with watch.stage("processing"):
            time.sleep(0.01)
        with watch.stage("processing"):
            time.sleep(0.01)
        assert watch.timings.processing_ms >= 15.0

    def test_unknown_stage_rejected(self):
        watch = Stopwatch()
        with pytest.raises(ValueError):
            with watch.stage("compile"):
                pass

    def test_exception_still_records(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch.stage("skyline"):
                time.sleep(0.005)
                raise RuntimeError
        assert watch.timings.skyline_ms > 0


class TestQueryOutcome:
    def test_derived_properties(self):
        io = IOStats(points_read=42, range_queries=5, empty_queries=2)
        out = QueryOutcome(
            skyline=np.zeros((3, 2)), method="X",
            timings=StageTimings(processing_ms=1.0), io=io,
        )
        assert out.skyline_size == 3
        assert out.points_read == 42
        assert out.range_queries == 5
        assert out.nonempty_queries == 3
        assert out.total_ms == pytest.approx(1.0)

    def test_defaults(self):
        out = QueryOutcome(skyline=np.empty((0, 2)), method="X")
        assert out.case is None
        assert not out.cache_hit
        assert out.points_read == 0
