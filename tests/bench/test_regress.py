"""Tests for benchmark snapshots and regression detection."""

import copy
import json

import pytest

from repro.bench.regress import (
    SCHEMA,
    SCHEMA_VERSION,
    SnapshotError,
    Thresholds,
    build_snapshot,
    compare_snapshots,
    load_snapshot,
    main,
    save_snapshot,
    summarize_registry,
)
from repro.obs.metrics import MetricsRegistry


def registry_for(method="Baseline", n=10, ms=8.0, points=100.0, rq=2.0):
    reg = MetricsRegistry()
    reg.inc("queries_total", n, method=method)
    reg.inc("points_read_total", points * n, method=method)
    reg.inc("range_queries_total", rq * n, method=method)
    for _ in range(n):
        reg.observe("query_total_ms", ms, method=method)
        reg.observe("stage_ms", ms / 2, method=method, stage="processing")
    reg.inc("cache_lookups_total", 6, strategy="MaxOverlapSP", outcome="hit")
    reg.inc("cache_lookups_total", 4, strategy="MaxOverlapSP", outcome="miss")
    return reg


def snapshot_for(ms=8.0, points=100.0, rq=2.0, scale="quick", run_id="base"):
    figures = {
        "fig5a": {
            "title": "t",
            "seconds": 1.0,
            **summarize_registry(registry_for(ms=ms, points=points, rq=rq)),
        }
    }
    return build_snapshot(scale=scale, figures=figures, rev="deadbeef", run_id=run_id)


class TestSummarizeRegistry:
    def test_per_method_means(self):
        summary = summarize_registry(registry_for())
        entry = summary["methods"]["Baseline"]
        assert entry["queries"] == 10
        assert entry["total_ms"]["mean"] == pytest.approx(8.0)
        assert entry["points_read"] == pytest.approx(100.0)
        assert entry["range_queries"] == pytest.approx(2.0)
        assert entry["stage_ms"]["processing"] == pytest.approx(4.0)
        assert summary["cache"]["hit_rate"] == pytest.approx(0.6)

    def test_empty_registry(self):
        summary = summarize_registry(MetricsRegistry())
        assert summary["methods"] == {}
        assert summary["cache"]["hit_rate"] is None
        assert "warmstart" not in summary

    def test_warmstart_gauges_become_snapshot_section(self):
        reg = registry_for()
        reg.set_gauge("warmstart_cold_total_ms", 30.0)
        reg.set_gauge("warmstart_mem_total_ms", 0.5)
        reg.set_gauge("warmstart_warm_total_ms", 0.6)
        reg.set_gauge("warmstart_cold_hit_rate", 0.8)
        reg.set_gauge("warmstart_mem_hit_rate", 1.0)
        reg.set_gauge("warmstart_warm_hit_rate", 1.0)
        reg.set_gauge("warmstart_restored_items", 12)
        section = summarize_registry(reg)["warmstart"]
        assert section["cold_total_ms"] == pytest.approx(30.0)
        assert section["warm_total_ms"] == pytest.approx(0.6)
        assert section["restored_items"] == pytest.approx(12)


class TestSnapshotIO:
    def test_schema_versioned_round_trip(self, tmp_path):
        snap = snapshot_for()
        assert snap["schema"] == SCHEMA
        assert snap["schema_version"] == SCHEMA_VERSION
        assert snap["git_rev"] == "deadbeef"
        path = save_snapshot(snap, tmp_path / "BENCH_x.json")
        assert load_snapshot(path) == json.loads(json.dumps(snap))

    def test_directory_target_gets_runid_name(self, tmp_path):
        snap = snapshot_for(run_id="r1")
        path = save_snapshot(snap, tmp_path)
        assert path.endswith("BENCH_r1.json")

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other", "figures": {}}))
        with pytest.raises(SnapshotError):
            load_snapshot(bad)

    def test_load_rejects_wrong_version(self, tmp_path):
        snap = snapshot_for()
        snap["schema_version"] = 999
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(snap))
        with pytest.raises(SnapshotError, match="schema_version"):
            load_snapshot(bad)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path / "nope.json")


class TestCompare:
    def test_identical_snapshots_pass(self):
        report = compare_snapshots(snapshot_for(), snapshot_for(run_id="new"))
        assert not report.has_regressions
        assert all(f.status == "ok" for f in report.findings)
        assert len(report.findings) == 3  # total_ms, points_read, range_queries

    def test_noise_within_thresholds_passes(self):
        # +20% on an 8 ms mean is inside rel_ms=0.30
        report = compare_snapshots(snapshot_for(), snapshot_for(ms=9.6, run_id="new"))
        assert not report.has_regressions

    def test_timing_regression_requires_rel_and_abs(self):
        # +50% but only +1.5 ms absolute: below abs_ms floor -> ok
        report = compare_snapshots(
            snapshot_for(ms=3.0), snapshot_for(ms=4.5, run_id="new")
        )
        assert not report.has_regressions
        # +50% and +4 ms absolute: regression
        report = compare_snapshots(
            snapshot_for(ms=8.0), snapshot_for(ms=12.0, run_id="new")
        )
        assert [f.metric for f in report.regressions] == ["total_ms"]

    def test_points_read_regression(self):
        report = compare_snapshots(
            snapshot_for(points=100.0), snapshot_for(points=150.0, run_id="new")
        )
        assert [f.metric for f in report.regressions] == ["points_read"]
        finding = report.regressions[0]
        assert finding.rel_delta == pytest.approx(0.5)

    def test_improvement_is_flagged_not_failed(self):
        report = compare_snapshots(
            snapshot_for(points=100.0), snapshot_for(points=40.0, run_id="new")
        )
        assert not report.has_regressions
        assert any(f.status == "improved" for f in report.findings)

    def test_missing_method_and_figure_reported(self):
        base = snapshot_for()
        cur = copy.deepcopy(snapshot_for(run_id="new"))
        del cur["figures"]["fig5a"]["methods"]["Baseline"]
        report = compare_snapshots(base, cur)
        assert any(f.status == "missing" for f in report.findings)
        assert any("Baseline" in w for w in report.warnings)
        cur["figures"] = {}
        report = compare_snapshots(base, cur)
        assert any(f.status == "missing" for f in report.findings)
        assert any("fig5a" in w for w in report.warnings)
        assert not report.has_regressions  # warnings never fail the check

    def test_extra_figure_warned(self):
        base = snapshot_for()
        cur = copy.deepcopy(snapshot_for(run_id="new"))
        cur["figures"]["fig9z"] = {"methods": {}}
        report = compare_snapshots(base, cur)
        assert any(f.status == "new" for f in report.findings)
        assert any("fig9z" in w for w in report.warnings)

    def test_malformed_entries_become_warnings_not_errors(self):
        base = snapshot_for()
        cur = copy.deepcopy(snapshot_for(run_id="new"))
        cur["figures"]["fig5a"]["methods"]["Baseline"]["total_ms"] = "garbage"
        report = compare_snapshots(base, cur)  # must not raise
        assert any("total_ms" in w for w in report.warnings)
        # the intact metrics are still compared
        assert any(f.metric == "points_read" for f in report.findings)

        cur["figures"]["fig5a"] = ["not", "a", "dict"]
        report = compare_snapshots(base, cur)
        assert any("malformed" in w for w in report.warnings)

    def test_warnings_rendered_and_serialized(self):
        base = snapshot_for()
        cur = copy.deepcopy(snapshot_for(run_id="new"))
        del cur["figures"]["fig5a"]["methods"]["Baseline"]
        report = compare_snapshots(base, cur)
        assert "warning:" in report.render_text()
        assert report.as_dict()["warnings"]
        json.dumps(report.as_dict())

    def test_scale_mismatch_rejected(self):
        with pytest.raises(SnapshotError, match="scale mismatch"):
            compare_snapshots(snapshot_for(), snapshot_for(scale="full", run_id="n"))
        report = compare_snapshots(
            snapshot_for(),
            snapshot_for(scale="full", run_id="n"),
            require_same_scale=False,
        )
        assert report.findings

    def test_render_and_as_dict(self):
        report = compare_snapshots(
            snapshot_for(ms=8.0), snapshot_for(ms=20.0, run_id="new")
        )
        text = report.render_text()
        assert "REGRESSED" in text and "FAIL" in text
        payload = report.as_dict()
        assert payload["has_regressions"] is True
        json.dumps(payload)
        ok = compare_snapshots(snapshot_for(), snapshot_for(run_id="new"))
        assert "OK" in ok.render_text()


class TestRegressCli:
    def write(self, tmp_path, name, **kwargs):
        path = tmp_path / name
        path.write_text(json.dumps(snapshot_for(**kwargs)))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = self.write(tmp_path, "a.json")
        cur = self.write(tmp_path, "b.json", run_id="new")
        assert main([base, cur]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_regression_and_json_report(self, tmp_path, capsys):
        base = self.write(tmp_path, "a.json")
        cur = self.write(tmp_path, "b.json", ms=30.0, run_id="new")
        out = tmp_path / "report.json"
        assert main([base, cur, "--json", str(out)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        assert json.loads(out.read_text())["has_regressions"] is True

    def test_custom_thresholds(self, tmp_path):
        base = self.write(tmp_path, "a.json")
        cur = self.write(tmp_path, "b.json", ms=30.0, run_id="new")
        assert main([base, cur, "--rel-ms", "5.0"]) == 0

    def test_exit_two_on_bad_inputs(self, tmp_path, capsys):
        base = self.write(tmp_path, "a.json")
        assert main([base, str(tmp_path / "missing.json")]) == 2
        other_scale = self.write(tmp_path, "c.json", scale="full", run_id="n")
        assert main([base, other_scale]) == 2
        assert main([base, other_scale, "--allow-scale-mismatch"]) == 0
        assert main(["--bogus"]) == 2

    def test_truncated_snapshot_reported_not_raised(self, tmp_path, capsys):
        """S1: a snapshot cut mid-write (pre-atomic-writes failure mode)
        must surface as a diagnostic + exit 2, never a raw traceback."""
        base = self.write(tmp_path, "a.json")
        truncated = tmp_path / "truncated.json"
        blob = json.dumps(snapshot_for(run_id="new"))
        truncated.write_text(blob[: len(blob) // 2])
        assert main([base, str(truncated)]) == 2
        out = capsys.readouterr().out
        assert "truncated.json" in out

    def test_load_truncated_file_raises_snapshot_error(self, tmp_path):
        path = tmp_path / "snap.json"
        blob = json.dumps(snapshot_for())
        path.write_text(blob[: len(blob) // 3])
        with pytest.raises(SnapshotError):
            load_snapshot(path)


class TestShardingSection:
    def sharded_snapshot(self, points8=12000.0, ms8=40.0, run_id="base"):
        reg = registry_for()
        for count, points, ms in (
            (1, 30000.0, 25.0),
            (2, 24000.0, 28.0),
            (4, 17000.0, 30.0),
            (8, points8, ms8),
        ):
            reg.set_gauge(f"sharding_points_read_{count}", points)
            reg.set_gauge(f"sharding_total_ms_{count}", ms)
        figures = {
            "sharding": {"title": "t", "seconds": 1.0, **summarize_registry(reg)}
        }
        return build_snapshot(
            scale="quick", figures=figures, rev="deadbeef", run_id=run_id
        )

    def test_gauges_become_snapshot_section(self):
        section = self.sharded_snapshot()["figures"]["sharding"]["sharding"]
        assert section["points_read_1"] == pytest.approx(30000.0)
        assert section["points_read_8"] == pytest.approx(12000.0)
        assert section["total_ms_4"] == pytest.approx(30.0)

    def test_identical_snapshots_pass(self):
        base = self.sharded_snapshot()
        cur = self.sharded_snapshot(run_id="cur")
        assert not compare_snapshots(base, cur).has_regressions

    def test_points_read_regression_is_gated_tightly(self):
        base = self.sharded_snapshot()
        cur = self.sharded_snapshot(points8=15000.0, run_id="cur")  # +25%
        report = compare_snapshots(base, cur)
        assert report.has_regressions
        assert any(
            f.metric == "points_read_8" and f.status == "regressed"
            for f in report.findings
        )

    def test_wall_clock_is_gated_generously(self):
        base = self.sharded_snapshot()
        # +50% and +20ms: within the serving-style wall-clock tolerance.
        cur = self.sharded_snapshot(ms8=60.0, run_id="cur")
        assert not compare_snapshots(base, cur).has_regressions
        # but a 2x-plus-large-absolute blowup still fails
        cur = self.sharded_snapshot(ms8=140.0, run_id="cur")
        report = compare_snapshots(base, cur)
        assert any(
            f.metric == "total_ms_8" and f.status == "regressed"
            for f in report.findings
        )
