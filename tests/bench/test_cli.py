"""Tests for the ``python -m repro.bench`` command-line entry point."""

from repro.bench.__main__ import main


class TestCli:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_selected_experiment_runs(self, capsys):
        assert main(["fig11a"]) == 0
        out = capsys.readouterr().out
        assert "fig11a" in out
        assert "Random" in out
        assert "scale=quick" in out

    def test_json_dump(self, capsys, tmp_path):
        import json

        path = tmp_path / "out.json"
        assert main(["--json", str(path), "fig11a"]) == 0
        data = json.loads(path.read_text())
        assert data["scale"] == "quick"
        assert "Random" in data["figures"]["fig11a"]["series"]

    def test_json_without_path(self, capsys):
        assert main(["--json"]) == 2

    def test_obs_writes_artifacts_and_report(self, capsys, tmp_path):
        import json

        obs_dir = tmp_path / "obs"
        assert main(["--obs", str(obs_dir), "--obs-report", "fig11a"]) == 0
        out = capsys.readouterr().out
        assert "observability report" in out
        assert "Cache lookups per strategy" in out

        metrics = json.loads((obs_dir / "metrics.json").read_text())
        assert {"counters", "gauges", "histograms"} <= set(metrics)
        assert any(c["name"] == "queries_total" for c in metrics["counters"])

        trace_lines = (obs_dir / "trace.jsonl").read_text().strip().splitlines()
        assert trace_lines
        spans = [json.loads(line) for line in trace_lines]
        assert any(s["name"] == "cbcs.query" for s in spans)

    def test_obs_report_alone_prints_summary(self, capsys):
        assert main(["--obs-report", "fig11a"]) == 0
        assert "observability report" in capsys.readouterr().out

    def test_obs_without_path(self, capsys):
        assert main(["--obs"]) == 2

    def test_unknown_flag_is_usage_error(self, capsys):
        assert main(["--bogus-flag", "fig11a"]) == 2

    def test_list_prints_figure_ids(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out and "fig11a" in out

    def test_obs_writes_openmetrics(self, capsys, tmp_path):
        obs_dir = tmp_path / "obs"
        assert main(["--obs", str(obs_dir), "fig11a"]) == 0
        prom = (obs_dir / "metrics.prom").read_text()
        assert "# TYPE repro_queries counter" in prom
        assert prom.endswith("# EOF\n")

    def test_query_log_streams_outcomes(self, capsys, tmp_path):
        import json

        log = tmp_path / "queries.jsonl"
        assert main(["--query-log", str(log), "fig11a"]) == 0
        records = [json.loads(line) for line in log.read_text().splitlines()]
        assert records
        assert {"method", "case", "total_ms", "io"} <= set(records[0])

    def test_save_bench_writes_schema_versioned_snapshot(self, capsys, tmp_path):
        import json

        from repro.bench.regress import SCHEMA, SCHEMA_VERSION

        path = tmp_path / "BENCH_ci.json"
        assert main(["--save-bench", str(path), "fig11a"]) == 0
        snap = json.loads(path.read_text())
        assert snap["schema"] == SCHEMA
        assert snap["schema_version"] == SCHEMA_VERSION
        assert snap["scale"] == "quick"
        methods = snap["figures"]["fig11a"]["methods"]
        assert methods, "snapshot recorded no methods"
        entry = next(iter(methods.values()))
        assert {"queries", "total_ms", "points_read", "range_queries", "stage_ms"} <= set(entry)

    def test_baseline_self_comparison_passes(self, capsys, tmp_path):
        path = tmp_path / "BENCH_base.json"
        assert main(["--save-bench", str(path), "fig11a"]) == 0
        assert main(["--baseline", str(path), "fig11a"]) == 0
        out = capsys.readouterr().out
        assert "bench regression check" in out

    def test_baseline_with_bad_snapshot_errors(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["--baseline", str(bad), "fig11a"]) == 2

    def test_audit_flag_reports_and_dumps(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "out.json"
        assert main(["--audit", "--json", str(out_json), "fig11a"]) == 0
        out = capsys.readouterr().out
        assert "plan-accuracy audit" in out
        assert "case accuracy" in out
        dump = json.loads(out_json.read_text())
        assert dump["audit"]["summary"]["case_accuracy"] == 1.0
        assert dump["audit"]["records"][0]["plan"] is not None
