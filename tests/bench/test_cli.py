"""Tests for the ``python -m repro.bench`` command-line entry point."""

from repro.bench.__main__ import main


class TestCli:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_selected_experiment_runs(self, capsys):
        assert main(["fig11a"]) == 0
        out = capsys.readouterr().out
        assert "fig11a" in out
        assert "Random" in out
        assert "scale=quick" in out

    def test_json_dump(self, capsys, tmp_path):
        import json

        path = tmp_path / "out.json"
        assert main(["--json", str(path), "fig11a"]) == 0
        data = json.loads(path.read_text())
        assert data["scale"] == "quick"
        assert "Random" in data["figures"]["fig11a"]["series"]

    def test_json_without_path(self, capsys):
        assert main(["--json"]) == 2

    def test_obs_writes_artifacts_and_report(self, capsys, tmp_path):
        import json

        obs_dir = tmp_path / "obs"
        assert main(["--obs", str(obs_dir), "--obs-report", "fig11a"]) == 0
        out = capsys.readouterr().out
        assert "observability report" in out
        assert "Cache lookups per strategy" in out

        metrics = json.loads((obs_dir / "metrics.json").read_text())
        assert {"counters", "gauges", "histograms"} <= set(metrics)
        assert any(c["name"] == "queries_total" for c in metrics["counters"])

        trace_lines = (obs_dir / "trace.jsonl").read_text().strip().splitlines()
        assert trace_lines
        spans = [json.loads(line) for line in trace_lines]
        assert any(s["name"] == "cbcs.query" for s in spans)

    def test_obs_report_alone_prints_summary(self, capsys):
        assert main(["--obs-report", "fig11a"]) == 0
        assert "observability report" in capsys.readouterr().out

    def test_obs_without_path(self, capsys):
        assert main(["--obs"]) == 2
