"""Tests for the ``python -m repro.bench`` command-line entry point."""

from repro.bench.__main__ import main


class TestCli:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_selected_experiment_runs(self, capsys):
        assert main(["fig11a"]) == 0
        out = capsys.readouterr().out
        assert "fig11a" in out
        assert "Random" in out
        assert "scale=quick" in out

    def test_json_dump(self, capsys, tmp_path):
        import json

        path = tmp_path / "out.json"
        assert main(["--json", str(path), "fig11a"]) == 0
        data = json.loads(path.read_text())
        assert data["scale"] == "quick"
        assert "Random" in data["figures"]["fig11a"]["series"]

    def test_json_without_path(self, capsys):
        assert main(["--json"]) == 2

    def test_obs_writes_artifacts_and_report(self, capsys, tmp_path):
        import json

        obs_dir = tmp_path / "obs"
        assert main(["--obs", str(obs_dir), "--obs-report", "fig11a"]) == 0
        out = capsys.readouterr().out
        assert "observability report" in out
        assert "Cache lookups per strategy" in out

        metrics = json.loads((obs_dir / "metrics.json").read_text())
        assert {"counters", "gauges", "histograms"} <= set(metrics)
        assert any(c["name"] == "queries_total" for c in metrics["counters"])

        trace_lines = (obs_dir / "trace.jsonl").read_text().strip().splitlines()
        assert trace_lines
        spans = [json.loads(line) for line in trace_lines]
        assert any(s["name"] == "cbcs.query" for s in spans)

    def test_obs_report_alone_prints_summary(self, capsys):
        assert main(["--obs-report", "fig11a"]) == 0
        assert "observability report" in capsys.readouterr().out

    def test_obs_without_path(self, capsys):
        assert main(["--obs"]) == 2

    def test_unknown_flag_is_usage_error(self, capsys):
        assert main(["--bogus-flag", "fig11a"]) == 2

    def test_list_prints_figure_ids(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out and "fig11a" in out

    def test_obs_writes_openmetrics(self, capsys, tmp_path):
        obs_dir = tmp_path / "obs"
        assert main(["--obs", str(obs_dir), "fig11a"]) == 0
        prom = (obs_dir / "metrics.prom").read_text()
        assert "# TYPE repro_queries counter" in prom
        assert prom.endswith("# EOF\n")

    def test_query_log_streams_outcomes(self, capsys, tmp_path):
        import json

        log = tmp_path / "queries.jsonl"
        assert main(["--query-log", str(log), "fig11a"]) == 0
        records = [json.loads(line) for line in log.read_text().splitlines()]
        assert records
        assert {"method", "case", "total_ms", "io"} <= set(records[0])

    def test_save_bench_writes_schema_versioned_snapshot(self, capsys, tmp_path):
        import json

        from repro.bench.regress import SCHEMA, SCHEMA_VERSION

        path = tmp_path / "BENCH_ci.json"
        assert main(["--save-bench", str(path), "fig11a"]) == 0
        snap = json.loads(path.read_text())
        assert snap["schema"] == SCHEMA
        assert snap["schema_version"] == SCHEMA_VERSION
        assert snap["scale"] == "quick"
        methods = snap["figures"]["fig11a"]["methods"]
        assert methods, "snapshot recorded no methods"
        entry = next(iter(methods.values()))
        assert {"queries", "total_ms", "points_read", "range_queries", "stage_ms"} <= set(entry)

    def test_baseline_self_comparison_passes(self, capsys, tmp_path):
        path = tmp_path / "BENCH_base.json"
        assert main(["--save-bench", str(path), "fig11a"]) == 0
        assert main(["--baseline", str(path), "fig11a"]) == 0
        out = capsys.readouterr().out
        assert "bench regression check" in out

    def test_baseline_with_bad_snapshot_errors(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["--baseline", str(bad), "fig11a"]) == 2

    def test_audit_flag_reports_and_dumps(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "out.json"
        assert main(["--audit", "--json", str(out_json), "fig11a"]) == 0
        out = capsys.readouterr().out
        assert "plan-accuracy audit" in out
        assert "case accuracy" in out
        dump = json.loads(out_json.read_text())
        assert dump["audit"]["summary"]["case_accuracy"] == 1.0
        assert dump["audit"]["records"][0]["plan"] is not None


class TestShardSweepCli:
    def test_shard_sweep_alone_runs_and_passes(self, capsys):
        assert main(["--shard-sweep", "3"]) == 0
        out = capsys.readouterr().out
        assert "# shard sweep" in out
        assert "PASS" in out

    def test_shard_sweep_needs_positive_count(self, capsys):
        assert main(["--shard-sweep", "0"]) == 2
        assert "positive query count" in capsys.readouterr().out

    def test_shard_sweep_with_faults_and_workers(self, capsys):
        assert main(["--shard-sweep", "3", "--faults", "default",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "faults=default" in out
        assert "stale serves" in out

    def test_shard_sweep_json_dump(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        assert main(["--shard-sweep", "2", "--json", str(target)]) == 0
        import json

        payload = json.loads(target.read_text())
        assert payload["shard_sweep"]["passed"] is True
        assert payload["shard_sweep"]["cells"] > 0

    def test_failing_sweep_exits_7(self, capsys, monkeypatch):
        from repro.bench import shardsweep

        def broken_sweep(**kwargs):
            report = shardsweep.ShardSweepReport(
                seeds=(0,), shard_counts=(1,), strategies=("max-overlap-sp",),
                profile=None, workers=1, n_queries=1,
            )
            report.answer_mismatches = 1
            return report

        monkeypatch.setattr(shardsweep, "run_shard_sweep", broken_sweep)
        assert main(["--shard-sweep", "1"]) == 7
        assert "shard sweep FAILED" in capsys.readouterr().out

    def test_sharding_figure_in_snapshot(self, capsys, tmp_path):
        target = tmp_path / "BENCH_x.json"
        assert main(["--save-bench", str(target), "sharding"]) == 0
        import json

        snap = json.loads(target.read_text())
        section = snap["figures"]["sharding"]["sharding"]
        points = [section[f"points_read_{c}"] for c in (1, 2, 4, 8)]
        assert all(a > b for a, b in zip(points, points[1:]))
