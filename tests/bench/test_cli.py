"""Tests for the ``python -m repro.bench`` command-line entry point."""

from repro.bench.__main__ import main


class TestCli:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_selected_experiment_runs(self, capsys):
        assert main(["fig11a"]) == 0
        out = capsys.readouterr().out
        assert "fig11a" in out
        assert "Random" in out
        assert "scale=quick" in out

    def test_json_dump(self, capsys, tmp_path):
        import json

        path = tmp_path / "out.json"
        assert main(["--json", str(path), "fig11a"]) == 0
        data = json.loads(path.read_text())
        assert data["scale"] == "quick"
        assert "Random" in data["figures"]["fig11a"]["series"]

    def test_json_without_path(self, capsys):
        assert main(["--json"]) == 2
