"""Tests for the bit-identity shard sweep (:mod:`repro.bench.shardsweep`)."""

import json

import pytest

from repro.bench.shardsweep import ShardSweepReport, run_shard_sweep


@pytest.fixture(scope="module")
def clean_report():
    return run_shard_sweep(
        n_queries=8, seeds=(0,), shard_counts=(1, 2, 4), n_points=800
    )


class TestCleanSweep:
    def test_passes_and_covers_every_cell(self, clean_report):
        assert clean_report.passed
        # 1 seed x 3 shard counts x 2 strategies
        assert clean_report.cells == 6
        assert clean_report.queries_checked == 6 * 8
        assert clean_report.answer_mismatches == 0
        assert clean_report.io_mismatches == 0
        assert clean_report.accounting_mismatches == 0

    def test_accounting_totals_reconcile(self, clean_report):
        total = clean_report.shards_pruned + clean_report.shards_scanned
        # sum over cells of n_queries * n_shards
        assert total == 8 * 2 * (1 + 2 + 4)

    def test_table_io_is_fully_attributed(self, clean_report):
        # The end-of-cell strict check ran without complaint, and the sweep
        # recorded per-shard-count totals for the trajectory.
        assert set(clean_report.points_read_by_shards) == {1, 2, 4}
        assert all(v > 0 for v in clean_report.points_read_by_shards.values())

    def test_report_serializes_and_renders(self, clean_report):
        payload = clean_report.as_dict()
        json.dumps(payload)
        assert payload["passed"] is True
        text = clean_report.render_text()
        assert "PASS" in text
        assert "answer mismatches    : 0" in text

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            run_shard_sweep(n_queries=1, strategies=("quantum",))


class TestFaultedSweep:
    def test_faulted_shard_keeps_answers_correct(self):
        report = run_shard_sweep(
            n_queries=8,
            seeds=(0,),
            shard_counts=(1, 4),
            strategies=("max-overlap-sp",),
            n_points=800,
            profile="default",
            workers=2,
        )
        assert report.passed
        assert report.profile == "default"
        # every non-stale answer was reference-checked; stale ones flagged
        assert report.queries_checked == 2 * 8
        text = report.render_text()
        assert "stale serves" in text

    def test_report_records_failures(self):
        report = ShardSweepReport(
            seeds=(0,),
            shard_counts=(1,),
            strategies=("max-overlap-sp",),
            profile=None,
            workers=1,
            n_queries=1,
        )
        report.answer_mismatches = 1
        report.errors.append("cell x: answer differs")
        assert not report.passed
        assert "FAIL" in report.render_text()
        assert report.as_dict()["passed"] is False
