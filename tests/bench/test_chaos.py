"""Tests for the chaos soak harness and its CLI exit codes."""

import json

import pytest

from repro.bench.chaos import ChaosReport, run_chaos_soak


@pytest.fixture(scope="module")
def soak():
    return run_chaos_soak(n_queries=40, profile="default", seed=0, n_points=500)


class TestChaosSoak:
    def test_soak_passes_acceptance_criteria(self, soak):
        assert soak.unhandled_exceptions == 0
        assert soak.incorrect_answers == 0
        assert soak.exact_fraction >= 0.99
        assert soak.passed

    def test_breaker_drill_cycles_all_states(self, soak):
        assert soak.breaker_cycled
        assert soak.drill_queries > 0

    def test_faults_were_actually_injected(self, soak):
        assert sum(soak.fault_counts.values()) > 0

    def test_deterministic_replay(self, soak):
        again = run_chaos_soak(
            n_queries=40, profile="default", seed=0, n_points=500
        )
        assert again.as_dict() == soak.as_dict()

    def test_report_serializes_and_renders(self, soak):
        payload = soak.as_dict()
        json.dumps(payload)
        text = soak.render_text()
        assert "PASS" in text
        assert "faults injected" in text

    def test_heavy_profile_never_raises(self):
        report = run_chaos_soak(
            n_queries=30, profile="heavy", seed=1, n_points=400
        )
        assert report.unhandled_exceptions == 0
        assert report.incorrect_answers == 0


class TestChaosVerdict:
    def test_failed_report_renders_fail(self):
        report = ChaosReport(
            profile="default", seed=0, n_queries=10, unhandled_exceptions=1
        )
        assert not report.passed
        assert "FAIL" in report.render_text()

    def test_stale_floor_enforced(self):
        report = ChaosReport(
            profile="default", seed=0, n_queries=100, stale_serves=2
        )
        assert report.exact_fraction == pytest.approx(0.98)
        assert not report.passed


class TestChaosCli:
    def test_chaos_flag_runs_soak_only(self, capsys):
        from repro.bench.__main__ import main

        code = main(["--chaos", "25", "--faults", "default"])
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos soak" in out
        assert "fig" not in out.split("chaos soak")[0]  # no figures ran

    def test_bad_profile_rejected(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--chaos", "10", "--faults", "bogus"]) == 2

    def test_nonpositive_chaos_rejected(self):
        from repro.bench.__main__ import main

        assert main(["--chaos", "0"]) == 2

    def test_figure_failure_exits_3_and_continues(self, capsys, monkeypatch):
        import repro.bench.__main__ as bench_main

        def boom():
            raise RuntimeError("mid-workload crash")

        experiments = dict(bench_main.ALL_EXPERIMENTS)
        experiments["figboom"] = boom
        monkeypatch.setattr(bench_main, "ALL_EXPERIMENTS", experiments)
        code = bench_main.main(["figboom", "fig11a"])
        out = capsys.readouterr().out
        assert code == 3
        assert "figboom FAILED" in out
        assert "mid-workload crash" in out
        assert "fig11a regenerated" in out  # later figures still ran
