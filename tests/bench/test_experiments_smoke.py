"""Smoke tests for the figure experiments at quick scale.

The full runs live under ``benchmarks/``; these tests only verify that each
experiment function produces a well-formed report, so a broken experiment
fails fast in the unit suite.
"""

import pytest

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    FigureReport,
    fig9_range_queries,
    fig10_stage_breakdown,
    fig11_strategies,
)


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {
            "fig5a", "fig5b", "fig5c", "fig6", "fig7", "fig8",
            "fig9a", "fig9b", "fig10", "fig11a", "fig11b",
            "fig12a", "fig12b", "warmstart", "serving", "sharding",
            "ablation-replacement", "ablation-multi-item",
            "ablation-invalidation", "ablation-skyline-algorithm",
            "ablation-page-cache", "ablation-cost-strategy",
        }
        assert expected == set(ALL_EXPERIMENTS)

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            fig9_range_queries("batch")
        with pytest.raises(ValueError):
            fig11_strategies("batch")


class TestReports:
    def test_fig9_report_structure(self):
        report = fig9_range_queries("interactive")
        assert isinstance(report, FigureReport)
        assert report.figure == "fig9a"
        assert "MPR" in report.series["range_queries"]
        assert len(report.series["dims"]) == len(
            report.series["range_queries"]["MPR"]
        )
        assert report.text.strip()
        assert str(report).startswith("== fig9a")

    def test_fig10_report_structure(self):
        report = fig10_stage_breakdown()
        stages = report.series["stages"]
        assert "Baseline" in stages
        for breakdown in stages.values():
            assert set(breakdown) == {"processing", "fetching", "skyline"}

    def test_fig11_report_structure(self):
        report = fig11_strategies("interactive")
        assert "Random" in report.series
        assert all("mean" in s for s in report.series.values())
