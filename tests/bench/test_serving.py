"""Tests for the open-loop overload soak and its regression wiring."""

import time

import numpy as np
import pytest

from repro.bench.regress import (
    Thresholds,
    build_snapshot,
    compare_snapshots,
    summarize_registry,
)
from repro.bench.serving import PacedEngine, ServingReport, run_overload_soak
from repro.obs.metrics import MetricsRegistry
from repro.stats import QueryOutcome, StageTimings


class TestServingReport:
    def report(self, **overrides):
        kwargs = dict(
            profile="none",
            seed=0,
            workers=2,
            n_requests=10,
            rate_multiplier=2.0,
            submitted=10,
            answered=7,
            shed=2,
            rejected_queue_full=1,
            coalesced_dedup=2,
            coalesced_subsumed=1,
            p50_ms=5.0,
            p95_ms=9.0,
            p99_ms=10.0,
            p99_limit_ms=100.0,
        )
        kwargs.update(overrides)
        return ServingReport(**kwargs)

    def test_closed_accounting_passes(self):
        report = self.report()
        assert report.accounting_closed
        assert report.coalesced == 3
        assert report.shed_rate == pytest.approx(0.3)
        assert report.coalesce_rate == pytest.approx(0.3)
        assert report.passed

    def test_a_leaked_request_fails(self):
        report = self.report(answered=6)  # one request vanished
        assert not report.accounting_closed
        assert not report.passed

    def test_incorrect_answer_fails(self):
        assert not self.report(incorrect_answers=1).passed

    def test_unhandled_exception_fails(self):
        assert not self.report(unhandled_exceptions=1).passed

    def test_unbounded_p99_fails(self):
        report = self.report(p99_ms=500.0)
        assert not report.p99_bounded
        assert not report.passed

    def test_p99_bound_is_vacuous_with_no_answers(self):
        report = self.report(
            answered=0, shed=9, rejected_queue_full=1, p99_ms=float("nan")
        )
        assert report.p99_bounded
        assert report.accounting_closed

    def test_missing_coalescing_fails(self):
        report = self.report(
            coalesced_dedup=0, coalesced_subsumed=0, min_coalesced=1
        )
        assert not report.passed

    def test_as_dict_serializes_verdict_inputs(self):
        import json

        payload = json.loads(json.dumps(self.report().as_dict()))
        assert payload["passed"] is True
        assert payload["accounting_closed"] is True
        assert payload["coalesced"] == 3
        assert payload["shed_rate"] == pytest.approx(0.3)

    def test_render_text_mentions_the_verdict(self):
        text = self.report().render_text()
        assert "CLOSED" in text and "PASS" in text
        leaked = self.report(answered=6).render_text()
        assert "LEAK" in leaked and "FAIL" in leaked


class _InstantEngine:
    """Zero-cost engine so PacedEngine's floor is the only wall time."""

    def __init__(self, total_ms=0.0):
        self._outcome = QueryOutcome(
            skyline=np.empty((0, 2)),
            method="instant",
            timings=StageTimings(processing_ms=total_ms),
        )
        self.closed = False

    def query(self, constraints, query_id=None, deadline=None):
        return self._outcome

    def close(self):
        self.closed = True


class TestPacedEngine:
    def test_floor_paces_a_free_answer(self):
        paced = PacedEngine(_InstantEngine(total_ms=0.0), floor_ms=20.0)
        t0 = time.perf_counter()
        paced.query(None)
        assert (time.perf_counter() - t0) * 1000.0 >= 18.0

    def test_simulated_cost_becomes_wall_time(self):
        paced = PacedEngine(_InstantEngine(total_ms=40.0), floor_ms=1.0)
        t0 = time.perf_counter()
        outcome = paced.query(None)
        assert (time.perf_counter() - t0) * 1000.0 >= 35.0
        assert outcome.total_ms == pytest.approx(40.0)

    def test_close_delegates(self):
        inner = _InstantEngine()
        PacedEngine(inner).close()
        assert inner.closed

    def test_validation(self):
        with pytest.raises(ValueError):
            run_overload_soak(n_requests=0)
        with pytest.raises(ValueError):
            run_overload_soak(rate_multiplier=0.0)


class TestOverloadSoakSmoke:
    """A tiny but real open-loop soak: every acceptance invariant holds at
    miniature scale in a few seconds."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_overload_soak(
            n_requests=40,
            n_points=800,
            ndim=3,
            workers=2,
            queue_capacity=16,
            calibration_queries=8,
            floor_ms=1.0,
            min_coalesced=0,
            seed=0,
        )

    def test_soak_passes(self, report):
        assert report.passed, report.render_text()

    def test_accounting_closes_exactly(self, report):
        assert report.submitted == 40
        assert report.accounting_closed
        # the per-priority tallies close too
        total = sum(
            sum(counts.values()) for counts in report.by_priority.values()
        )
        assert total == 40

    def test_admitted_answers_were_bit_checked(self, report):
        assert report.incorrect_answers == 0
        assert report.unhandled_exceptions == 0
        assert report.answered > 0

    def test_latency_was_measured_and_bounded(self, report):
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.p99_ms <= report.p99_limit_ms

    def test_calibration_derived_the_schedule(self, report):
        assert report.mean_service_ms > 0
        assert report.target_rps == pytest.approx(2.0 * report.saturation_rps)
        assert report.achieved_rps > 0


class TestServingRegression:
    """The serving figure's gauges gate the bench compare with their own
    generous wall-clock thresholds."""

    def registry(self, p99=100.0):
        reg = MetricsRegistry()
        reg.set_gauge("serving_p50_ms", p99 / 4)
        reg.set_gauge("serving_p95_ms", p99 / 2)
        reg.set_gauge("serving_p99_ms", p99)
        reg.set_gauge("serving_shed_rate", 0.1)
        reg.set_gauge("serving_coalesce_rate", 0.4)
        reg.set_gauge("serving_deadline_exceeded", 1.0)
        reg.set_gauge("serving_submitted", 200.0)
        reg.set_gauge("serving_answered", 180.0)
        reg.set_gauge("serving_target_rps", 500.0)
        return reg

    def snapshot(self, p99=100.0, run_id="base"):
        figures = {
            "serving": {
                "title": "t",
                "seconds": 1.0,
                **summarize_registry(self.registry(p99=p99)),
            }
        }
        return build_snapshot(
            scale="quick", figures=figures, rev="deadbeef", run_id=run_id
        )

    def test_summarize_exports_a_serving_section(self):
        summary = summarize_registry(self.registry())
        assert summary["serving"]["p99_ms"] == pytest.approx(100.0)
        assert summary["serving"]["coalesce_rate"] == pytest.approx(0.4)

    def test_small_wall_clock_noise_passes(self):
        # +40% p99 is under both the 100% relative and 50ms absolute bars
        report = compare_snapshots(self.snapshot(100.0), self.snapshot(140.0))
        assert not report.has_regressions
        assert any(f.metric == "p99_ms" for f in report.findings)

    def test_doubled_latency_with_absolute_margin_regresses(self):
        report = compare_snapshots(self.snapshot(100.0), self.snapshot(260.0))
        assert report.has_regressions
        bad = [f for f in report.findings if f.status == "regressed"]
        assert any(f.method == "serving" for f in bad)

    def test_thresholds_are_tunable(self):
        tight = Thresholds(rel_serving=0.1, abs_serving_ms=1.0)
        report = compare_snapshots(
            self.snapshot(100.0), self.snapshot(140.0), thresholds=tight
        )
        assert report.has_regressions
