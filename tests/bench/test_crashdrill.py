"""Crash-recovery drill: scenarios pass, determinism, artifacts, CLI exit."""

import json

import pytest

from repro.bench.crashdrill import (
    DEFAULT_SCENARIOS,
    CrashScenario,
    run_crash_drill,
)

_QUICK = dict(n_points=150, ndim=3, n_ops=12, n_check_queries=5, fsync=False)


@pytest.fixture(scope="module")
def drill_report():
    return run_crash_drill(seed=0, profile="none", **_QUICK)


class TestDrill:
    def test_all_default_scenarios_pass(self, drill_report):
        assert drill_report.passed
        assert len(drill_report.scenarios) == len(DEFAULT_SCENARIOS)
        for scenario in drill_report.scenarios:
            assert scenario.passed, scenario.errors
            assert scenario.queries_checked > 0
            assert scenario.mismatches == 0

    def test_crash_scenarios_actually_crash(self, drill_report):
        by_name = {s.name: s for s in drill_report.scenarios}
        control = by_name.pop("warm-restart")
        assert not control.crashed
        # Clean shutdown commits the whole schedule and warm-restarts.
        assert control.committed_ops == control.total_ops
        assert control.cache_restored_from != "cold"
        for scenario in by_name.values():
            assert scenario.crashed, f"{scenario.name} never hit its point"
            # A crash never commits more than the schedule attempted.
            assert scenario.committed_ops <= scenario.total_ops

    def test_torn_scenario_reports_torn_tail(self, drill_report):
        (torn,) = [
            s for s in drill_report.scenarios if s.name == "wal-append-torn"
        ]
        assert torn.crashed
        # The torn prefix landed on whichever WAL hit the point; either way
        # recovery must have seen and truncated it.
        assert "torn" in (torn.tail_status, torn.cache_tail_status)

    def test_seeded_determinism(self, drill_report):
        again = run_crash_drill(seed=0, profile="none", **_QUICK)
        a = drill_report.as_dict()
        b = again.as_dict()
        assert a == b

    def test_different_seed_changes_schedule(self, drill_report):
        other = run_crash_drill(seed=42, profile="none", **_QUICK)
        assert other.passed
        committed = [s.committed_ops for s in other.scenarios]
        baseline = [s.committed_ops for s in drill_report.scenarios]
        assert committed != baseline or other.as_dict() != drill_report.as_dict()

    def test_report_artifact_written(self, tmp_path):
        report = run_crash_drill(
            seed=1,
            profile="none",
            scenarios=(CrashScenario("wal-append-clean", "wal.append", after=3),),
            out_dir=tmp_path,
            **_QUICK,
        )
        assert report.passed
        payload = json.loads((tmp_path / "recovery_report.json").read_text())
        assert payload["passed"] is True
        assert payload["scenarios"][0]["name"] == "wal-append-clean"

    def test_drill_under_fault_profile(self):
        report = run_crash_drill(
            seed=2,
            profile="default",
            workers=2,
            scenarios=(
                CrashScenario("warm-restart", None),
                CrashScenario("wal-append-torn", "wal.append", after=5,
                              torn_fraction=0.5),
            ),
            **_QUICK,
        )
        assert report.passed, [s.errors for s in report.scenarios]

    def test_render_text_mentions_every_scenario(self, drill_report):
        text = drill_report.render_text()
        for scenario in drill_report.scenarios:
            assert scenario.name in text
        assert text.endswith("PASS")


class TestCli:
    def test_crash_drill_flag_exits_zero(self, capsys, tmp_path):
        from repro.bench.__main__ import main

        out_dir = tmp_path / "drill"
        assert main(["--crash-drill", "--crash-out", str(out_dir)]) == 0
        assert "crash-recovery drill" in capsys.readouterr().out
        assert (out_dir / "recovery_report.json").exists()
