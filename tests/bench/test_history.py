"""Tests for bench-trajectory reporting (repro.bench.history)."""

import json

from repro.bench.history import (
    build_history,
    collect_snapshots,
    main,
    render_history,
)
from repro.bench.regress import SCHEMA, SCHEMA_VERSION


def snapshot(run_id, created_at, total_ms, points_read, scale="quick"):
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "run_id": run_id,
        "created_at": created_at,
        "scale": scale,
        "git_rev": "deadbeefcafe",
        "figures": {
            "fig5a": {
                "methods": {
                    "CBCS": {
                        "queries": 100,
                        "total_ms": {"mean": total_ms},
                        "points_read": points_read,
                        "range_queries": 1.0,
                        "stage_ms": {},
                    }
                },
                "cache": {"lookups": 100, "hit_rate": 0.8},
            }
        },
    }


def write(tmp_path, snap, name=None):
    path = tmp_path / (name or f"BENCH_{snap['run_id']}.json")
    path.write_text(json.dumps(snap))
    return path


class TestCollect:
    def test_orders_by_created_at(self, tmp_path):
        # file names deliberately sort against creation order
        write(tmp_path, snapshot("b", "2026-08-02T00:00:00", 10.0, 100.0),
              name="BENCH_aaa.json")
        write(tmp_path, snapshot("a", "2026-08-01T00:00:00", 10.0, 100.0),
              name="BENCH_zzz.json")
        snaps, warnings = collect_snapshots(tmp_path)
        assert warnings == []
        assert [s["run_id"] for s in snaps] == ["a", "b"]

    def test_malformed_file_warns_and_skips(self, tmp_path):
        write(tmp_path, snapshot("a", "2026-08-01T00:00:00", 10.0, 100.0))
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        (tmp_path / "BENCH_wrong.json").write_text(
            json.dumps({"schema": "something-else"})
        )
        snaps, warnings = collect_snapshots(tmp_path)
        assert len(snaps) == 1
        assert len(warnings) == 2

    def test_non_bench_files_ignored(self, tmp_path):
        (tmp_path / "notes.json").write_text("[]")
        snaps, warnings = collect_snapshots(tmp_path)
        assert snaps == [] and warnings == []


class TestBuildHistory:
    def test_flags_run_over_run_regression(self):
        snaps = [
            snapshot("r1", "2026-08-01T00:00:00", 10.0, 100.0),
            snapshot("r2", "2026-08-02T00:00:00", 20.0, 100.0),  # +100% ms
            snapshot("r3", "2026-08-03T00:00:00", 10.0, 100.0),  # back down
        ]
        history = build_history(snaps)
        assert history["schema"] == "repro.bench.history"
        assert history["snapshots"] == 3
        points = history["scales"]["quick"]["fig5a"]["CBCS"]
        assert [p["run_id"] for p in points] == ["r1", "r2", "r3"]
        assert points[0]["regressions"] == []
        assert points[1]["regressions"] == ["total_ms"]
        assert points[2]["regressions"] == []
        assert points[2]["improvements"] == ["total_ms"]

    def test_jitter_below_threshold_is_ok(self):
        # +20% relative but only +0.4 ms absolute: below both CI floors
        snaps = [
            snapshot("r1", "2026-08-01T00:00:00", 2.0, 100.0),
            snapshot("r2", "2026-08-02T00:00:00", 2.4, 100.0),
        ]
        points = build_history(snaps)["scales"]["quick"]["fig5a"]["CBCS"]
        assert points[1]["regressions"] == []
        assert points[1]["improvements"] == []

    def test_points_read_regression(self):
        snaps = [
            snapshot("r1", "2026-08-01T00:00:00", 10.0, 100.0),
            snapshot("r2", "2026-08-02T00:00:00", 10.0, 200.0),
        ]
        points = build_history(snaps)["scales"]["quick"]["fig5a"]["CBCS"]
        assert points[1]["regressions"] == ["points_read"]

    def test_scale_filter_splits_series(self):
        snaps = [
            snapshot("q1", "2026-08-01T00:00:00", 10.0, 100.0, scale="quick"),
            snapshot("f1", "2026-08-02T00:00:00", 90.0, 900.0, scale="full"),
        ]
        history = build_history(snaps)
        assert set(history["scales"]) == {"quick", "full"}
        only_quick = build_history(snaps, scale="quick")
        assert set(only_quick["scales"]) == {"quick"}
        # cross-scale points never compare against each other
        assert history["scales"]["full"]["fig5a"]["CBCS"][0]["regressions"] == []


class TestRender:
    def test_markdown_highlights_regressions(self):
        snaps = [
            snapshot("r1", "2026-08-01T00:00:00", 10.0, 100.0),
            snapshot("r2", "2026-08-02T00:00:00", 20.0, 100.0),
        ]
        text = render_history(build_history(snaps))
        assert "# Bench trajectory (2 snapshots)" in text
        assert "## fig5a / CBCS (scale=quick)" in text
        assert "**REGRESSED: total_ms**" in text
        assert "1 run-over-run regression(s)" in text

    def test_markdown_clean_run(self):
        snaps = [snapshot("r1", "2026-08-01T00:00:00", 10.0, 100.0)]
        text = render_history(build_history(snaps))
        assert "no run-over-run regressions beyond threshold" in text

    def test_empty_history(self):
        text = render_history(build_history([]))
        assert "(no figure series found)" in text


class TestCLI:
    def test_renders_and_writes_artifacts(self, tmp_path, capsys):
        write(tmp_path, snapshot("r1", "2026-08-01T00:00:00", 10.0, 100.0))
        write(tmp_path, snapshot("r2", "2026-08-02T00:00:00", 20.0, 100.0))
        json_out = tmp_path / "hist.json"
        md_out = tmp_path / "hist.md"
        rc = main(
            [str(tmp_path), "--json", str(json_out), "--markdown", str(md_out)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Bench trajectory" in out
        loaded = json.loads(json_out.read_text())
        assert loaded["schema_version"] == 1
        assert "REGRESSED" in md_out.read_text()

    def test_missing_directory(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such snapshot directory" in capsys.readouterr().out

    def test_empty_directory(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 2
        assert "no readable" in capsys.readouterr().out

    def test_warning_goes_to_stderr(self, tmp_path, capsys):
        write(tmp_path, snapshot("r1", "2026-08-01T00:00:00", 10.0, 100.0))
        (tmp_path / "BENCH_bad.json").write_text("{broken")
        assert main([str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "warning:" in captured.err
