"""Tests for the benchmark harness and reporting."""

import numpy as np
import pytest

from repro.bench.harness import (
    MethodResult,
    bench_scale,
    make_cbcs,
    make_methods,
    run_independent_workload,
    run_interactive_workload,
    run_queries,
    scaled,
    summarize,
)
from repro.bench.reporting import (
    distribution_summary,
    format_boxplot_table,
    format_series,
    format_table,
)
from repro.core.cache import SkylineCache
from repro.data.generator import generate
from repro.stats import QueryOutcome, StageTimings
from repro.storage.pager import IOStats


@pytest.fixture(scope="module")
def data():
    return generate("independent", 1500, 3, seed=1)


class TestScale:
    def test_default_scale_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "quick"
        assert scaled(1, 2, 3) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert bench_scale() == "full"
        assert scaled(1, 2, 3) == 3

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "enormous")
        with pytest.raises(ValueError):
            bench_scale()


class TestMethodResult:
    def make_outcome(self, ms, points, stable):
        return QueryOutcome(
            skyline=np.zeros((1, 2)),
            method="m",
            timings=StageTimings(fetch_io_ms=ms),
            io=IOStats(points_read=points, range_queries=2, empty_queries=1),
            stable=stable,
        )

    def test_aggregates(self):
        res = MethodResult("m")
        res.outcomes = [
            self.make_outcome(10.0, 100, True),
            self.make_outcome(30.0, 300, False),
        ]
        assert res.mean_total_ms() == pytest.approx(20.0)
        assert res.mean_points_read() == pytest.approx(200.0)
        assert res.mean_range_queries() == pytest.approx(2.0)
        assert res.mean_nonempty_queries() == pytest.approx(1.0)

    def test_stability_split(self):
        res = MethodResult("m")
        res.outcomes = [
            self.make_outcome(10.0, 100, True),
            self.make_outcome(30.0, 300, False),
            self.make_outcome(50.0, 500, None),  # miss: in neither split
        ]
        split = res.split_by_stability()
        assert len(split["stable"]) == 1
        assert len(split["unstable"]) == 1
        assert split["stable"].mean_total_ms() == pytest.approx(10.0)

    def test_stage_means(self):
        res = MethodResult("m")
        res.outcomes = [self.make_outcome(10.0, 1, True)]
        stages = res.mean_stage_ms()
        assert stages["fetching"] == pytest.approx(10.0)
        assert stages["processing"] == 0.0


class TestWorkloadRunners:
    def test_make_methods_names(self, data):
        methods = make_methods(data, include_mpr=True)
        assert set(methods) == {"Baseline", "BBS", "aMPR", "MPR"}

    def test_make_cbcs_uses_given_cache(self, data):
        cache = SkylineCache(capacity=4)
        engine = make_cbcs(data, cache=cache)
        assert engine.cache is cache

    def test_interactive_runs_every_method_on_same_queries(self, data):
        methods = make_methods(data)
        results = run_interactive_workload(
            data, methods, n_sessions=1, queries_per_session=5, seed=3
        )
        lengths = {len(res) for res in results.values()}
        assert lengths == {5}

    def test_independent_excludes_warmup(self, data):
        methods = {"aMPR": make_cbcs(data)}
        results = run_independent_workload(
            data, methods, n_queries=4, warm_queries=6, seed=4
        )
        assert len(results["aMPR"]) == 4
        # warm-up populated the cache
        assert len(methods["aMPR"].cache) >= 4

    def test_run_queries_collects_outcomes(self, data):
        from repro.workload.generator import WorkloadGenerator

        engine = make_cbcs(data)
        queries = WorkloadGenerator(data, seed=5).independent_queries(3)
        result = run_queries(engine, queries)
        assert len(result) == 3
        assert result.method.startswith("CBCS")

    def test_summarize_skips_empty(self):
        out = summarize({"empty": MethodResult("empty")})
        assert out == {}


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 10000.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "10,000" in text

    def test_format_series(self):
        text = format_series(
            "n", [10, 20], {"m1": [1.0, 2.0], "m2": [3.0]}, unit="ms"
        )
        assert "m1 (ms)" in text
        assert "-" in text.splitlines()[-1]  # missing value rendered as '-'

    def test_distribution_summary(self):
        s = distribution_summary(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["median"] == pytest.approx(2.5)

    def test_distribution_summary_empty(self):
        s = distribution_summary(np.array([]))
        assert all(v != v for v in s.values())  # all NaN

    def test_boxplot_table(self):
        text = format_boxplot_table({"m": np.array([1.0, 2.0])})
        assert "median" in text
        assert "m" in text
