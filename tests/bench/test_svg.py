"""Tests for the SVG chart renderer."""

import math

import pytest

from repro.bench.experiments import FigureReport
from repro.bench.svg import bar_chart, line_chart, render_figure


class TestLineChart:
    def test_basic_structure(self):
        svg = line_chart(
            "Title", "|S|", [10, 20, 30],
            {"A": [1.0, 2.0, 3.0], "B": [3.0, 2.0, 1.0]},
            y_label="ms",
        )
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<polyline") == 2
        assert "Title" in svg
        assert "|S|" in svg

    def test_nan_values_skipped(self):
        svg = line_chart(
            "T", "x", [1, 2, 3], {"A": [1.0, math.nan, 3.0]}
        )
        # two finite points still drawn as circles, polyline still possible
        assert svg.count("<circle") == 2

    def test_log_scale_excludes_nonpositive(self):
        svg = line_chart("T", "x", [1, 2], {"A": [0.0, 100.0]}, log_y=True)
        assert svg.count("<circle") == 1

    def test_empty_series(self):
        svg = line_chart("T", "x", [], {})
        assert "no data" in svg

    def test_escapes_markup(self):
        svg = line_chart("a < b & c", "x", [1, 2], {"s<1>": [1.0, 2.0]})
        assert "a &lt; b &amp; c" in svg
        assert "s&lt;1&gt;" in svg


class TestBarChart:
    def test_basic_structure(self):
        svg = bar_chart(
            "Bars", ["one", "two"], {"m": [1.0, 2.0], "n": [2.0, 1.0]}
        )
        # 4 data bars + 2 legend swatches
        assert svg.count("<rect") >= 6
        assert "one" in svg and "two" in svg

    def test_empty(self):
        assert "no data" in bar_chart("T", [], {})


class TestRenderFigure:
    def test_size_series(self):
        report = FigureReport(
            figure="fig5a", title="t", text="",
            series={"sizes": [10, 20], "time_ms": {"A": [1.0, 2.0]}},
        )
        assert "<polyline" in render_figure(report)

    def test_dims_series_log(self):
        report = FigureReport(
            figure="fig9a", title="t", text="",
            series={"dims": [2, 3], "range_queries": {"MPR": [5.0, 100.0]}},
        )
        svg = render_figure(report)
        assert "log" in svg

    def test_stage_series(self):
        report = FigureReport(
            figure="fig10", title="t", text="",
            series={"stages": {"Baseline": {
                "processing": 0.0, "fetching": 1.0, "skyline": 2.0}}},
        )
        assert "<rect" in render_figure(report)

    def test_mean_series(self):
        report = FigureReport(
            figure="fig11a", title="t", text="",
            series={"Random": {"mean": 5.0, "median": 4.0}},
        )
        assert "<rect" in render_figure(report)

    def test_unknown_shape_returns_none(self):
        report = FigureReport(figure="x", title="t", text="", series={"odd": 1})
        assert render_figure(report) is None
