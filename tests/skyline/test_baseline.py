"""Tests for the naive Baseline method."""

import numpy as np
import pytest

from repro.data.generator import generate
from repro.geometry.constraints import Constraints
from repro.skyline.baseline import BaselineMethod, naive_constrained_skyline
from repro.skyline.reference import brute_force_skyline, is_skyline
from repro.storage.table import DiskTable


@pytest.fixture()
def table_and_data():
    pts = generate("independent", 1500, 3, seed=21)
    return DiskTable(pts), pts


class TestNaive:
    def test_matches_oracle(self, table_and_data):
        table, pts = table_and_data
        c = Constraints([0.2, 0.2, 0.2], [0.8, 0.8, 0.8])
        skyline, fetched = naive_constrained_skyline(table, c)
        inside = pts[c.satisfied_mask(pts)]
        assert is_skyline(inside, skyline)
        assert fetched >= len(inside)

    def test_empty_region(self, table_and_data):
        table, _ = table_and_data
        skyline, fetched = naive_constrained_skyline(
            table, Constraints([5.0] * 3, [6.0] * 3)
        )
        assert len(skyline) == 0
        assert fetched == 0


class TestBaselineMethod:
    def test_outcome_fields(self, table_and_data):
        table, pts = table_and_data
        method = BaselineMethod(table)
        c = Constraints([0.1, 0.1, 0.1], [0.7, 0.7, 0.7])
        outcome = method.query(c)
        assert outcome.method == "Baseline"
        assert outcome.io.range_queries == 1
        assert outcome.points_read > 0
        assert outcome.timings.fetch_io_ms > 0
        inside = pts[c.satisfied_mask(pts)]
        assert is_skyline(inside, outcome.skyline)

    def test_no_processing_stage(self, table_and_data):
        """Figure 10: 'Baseline has no processing stage'."""
        table, _ = table_and_data
        outcome = BaselineMethod(table).query(
            Constraints([0.0] * 3, [1.0] * 3)
        )
        assert outcome.timings.processing_ms == 0.0

    def test_points_read_tracks_selectivity(self, table_and_data):
        table, _ = table_and_data
        method = BaselineMethod(table)
        small = method.query(Constraints([0.45] * 3, [0.55] * 3))
        large = method.query(Constraints([0.0] * 3, [1.0] * 3))
        assert small.points_read < large.points_read
