"""Tests for the NN skyline method [15]."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.generator import generate
from repro.geometry.constraints import Constraints
from repro.index.rtree import RTree
from repro.skyline.bbs import bbs_skyline
from repro.skyline.nn_method import NNMethod, nn_constrained_skyline
from repro.skyline.reference import brute_force_skyline, is_skyline


def constrained_oracle(points, constraints):
    inside = points[constraints.satisfied_mask(points)]
    return inside[brute_force_skyline(inside)]


class TestCorrectness:
    def test_empty_tree(self):
        tree = RTree.bulk_load_points(np.empty((0, 2)))
        result = nn_constrained_skyline(tree)
        assert len(result.skyline) == 0

    def test_unconstrained_matches_oracle(self):
        pts = generate("independent", 400, 2, seed=1)
        tree = RTree.bulk_load_points(pts, max_entries=16)
        result = nn_constrained_skyline(tree)
        assert is_skyline(pts, result.skyline)

    @pytest.mark.parametrize(
        "distribution", ["independent", "correlated", "anticorrelated"]
    )
    def test_constrained_matches_oracle(self, distribution):
        pts = generate(distribution, 500, 3, seed=2)
        tree = RTree.bulk_load_points(pts, max_entries=16)
        c = Constraints([0.2, 0.1, 0.2], [0.8, 0.9, 0.8])
        result = nn_constrained_skyline(tree, c)
        expected = constrained_oracle(pts, c)
        assert len(result.skyline) == len(expected)
        got = result.skyline[np.lexsort(result.skyline.T[::-1])]
        exp = expected[np.lexsort(expected.T[::-1])]
        np.testing.assert_array_equal(got, exp)

    def test_duplicates_all_found(self):
        pts = np.array([[0.1, 0.9], [0.1, 0.9], [0.5, 0.5], [0.9, 0.1]])
        tree = RTree.bulk_load_points(pts, max_entries=4)
        result = nn_constrained_skyline(tree)
        assert len(result.skyline) == 4

    def test_empty_constraint_region(self):
        pts = generate("independent", 100, 2, seed=3)
        tree = RTree.bulk_load_points(pts)
        result = nn_constrained_skyline(tree, Constraints([5, 5], [6, 6]))
        assert len(result.skyline) == 0

    def test_dimension_mismatch(self):
        tree = RTree.bulk_load_points(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            nn_constrained_skyline(tree, Constraints([0.0], [1.0]))

    @given(
        pts=arrays(
            np.float64,
            st.tuples(st.integers(0, 60), st.just(2)),
            elements=st.floats(0, 1),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_oracle(self, pts):
        tree = RTree.bulk_load_points(pts, max_entries=4)
        c = Constraints([0.1, 0.1], [0.9, 0.9])
        result = nn_constrained_skyline(tree, c)
        expected = constrained_oracle(pts, c)
        assert len(result.skyline) == len(expected)


class TestInferiorityToBBS:
    """Reproduces the related-work claim: NN does more R-tree work than BBS."""

    def test_nn_accesses_more_nodes_than_bbs(self):
        pts = generate("independent", 5000, 3, seed=4)
        tree = RTree.bulk_load_points(pts, max_entries=32)
        c = Constraints([0.1] * 3, [0.9] * 3)
        nn = nn_constrained_skyline(tree, c)
        bbs = bbs_skyline(tree, c)
        assert nn.nodes_accessed > bbs.nodes_accessed
        assert len(nn.skyline) == len(bbs.skyline)

    def test_nn_queries_grow_with_skyline_size(self):
        pts = generate("anticorrelated", 2000, 2, seed=5)
        tree = RTree.bulk_load_points(pts, max_entries=16)
        result = nn_constrained_skyline(tree)
        assert result.nn_queries > len(result.skyline)


class TestMethodWrapper:
    def test_query_outcome(self):
        pts = generate("independent", 1000, 2, seed=6)
        method = NNMethod(pts, max_entries=16)
        c = Constraints([0.1, 0.1], [0.9, 0.9])
        out = method.query(c)
        assert out.method == "NN"
        assert out.nodes_accessed > 0
        assert out.timings.fetch_io_ms > 0
        expected = constrained_oracle(pts, c)
        assert len(out.skyline) == len(expected)
