"""Tests for constrained BBS against the brute-force oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.generator import generate
from repro.geometry.constraints import Constraints
from repro.index.rtree import RTree
from repro.skyline.bbs import BBSMethod, bbs_skyline
from repro.skyline.reference import brute_force_skyline, is_skyline
from repro.storage.costmodel import DiskCostModel


def constrained_oracle(points, constraints):
    inside = points[constraints.satisfied_mask(points)]
    return inside[brute_force_skyline(inside)]


class TestUnconstrained:
    def test_empty_tree(self):
        tree = RTree.bulk_load_points(np.empty((0, 2)))
        result = bbs_skyline(tree)
        assert len(result.skyline) == 0

    def test_matches_oracle(self):
        pts = generate("independent", 500, 3, seed=11)
        tree = RTree.bulk_load_points(pts, max_entries=16)
        result = bbs_skyline(tree)
        assert is_skyline(pts, result.skyline)

    def test_duplicates(self):
        pts = np.array([[0.1, 0.9], [0.1, 0.9], [0.5, 0.5], [0.9, 0.1]])
        tree = RTree.bulk_load_points(pts, max_entries=4)
        result = bbs_skyline(tree)
        assert len(result.skyline) == 4

    def test_nodes_accessed_less_than_total_for_pruned_search(self):
        pts = generate("correlated", 5000, 3, seed=4)
        tree = RTree.bulk_load_points(pts, max_entries=16)
        result = bbs_skyline(tree)
        total_nodes = sum(1 for _ in tree.iter_nodes())
        assert 0 < result.nodes_accessed < total_nodes


class TestConstrained:
    @pytest.mark.parametrize(
        "distribution", ["independent", "correlated", "anticorrelated"]
    )
    def test_matches_oracle(self, distribution):
        pts = generate(distribution, 800, 3, seed=5)
        tree = RTree.bulk_load_points(pts, max_entries=16)
        c = Constraints([0.2, 0.1, 0.3], [0.8, 0.9, 0.7])
        result = bbs_skyline(tree, c)
        expected = constrained_oracle(pts, c)
        assert is_skyline(pts[c.satisfied_mask(pts)], result.skyline)
        assert len(result.skyline) == len(expected)

    def test_empty_constraint_region(self):
        pts = generate("independent", 100, 2, seed=6)
        tree = RTree.bulk_load_points(pts, max_entries=8)
        c = Constraints([2.0, 2.0], [3.0, 3.0])
        result = bbs_skyline(tree, c)
        assert len(result.skyline) == 0

    def test_dimension_mismatch(self):
        tree = RTree.bulk_load_points(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            bbs_skyline(tree, Constraints([0.0], [1.0]))

    def test_constraints_reduce_node_accesses(self):
        pts = generate("independent", 5000, 3, seed=7)
        tree = RTree.bulk_load_points(pts, max_entries=16)
        narrow = Constraints([0.4, 0.4, 0.4], [0.5, 0.5, 0.5])
        wide = Constraints([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        assert (
            bbs_skyline(tree, narrow).nodes_accessed
            < bbs_skyline(tree, wide).nodes_accessed
        )

    @given(
        pts=arrays(
            np.float64,
            st.tuples(st.integers(0, 80), st.just(2)),
            elements=st.floats(0, 1),
        ),
        bounds=st.tuples(
            st.floats(0, 1), st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matches_oracle(self, pts, bounds):
        c = Constraints(
            [min(bounds[0], bounds[1]), min(bounds[2], bounds[3])],
            [max(bounds[0], bounds[1]), max(bounds[2], bounds[3])],
        )
        tree = RTree.bulk_load_points(pts, max_entries=4)
        result = bbs_skyline(tree, c)
        expected = constrained_oracle(pts, c)
        assert len(result.skyline) == len(expected)
        if len(expected):
            got = result.skyline[np.lexsort(result.skyline.T[::-1])]
            exp = expected[np.lexsort(expected.T[::-1])]
            np.testing.assert_array_equal(got, exp)


class TestProgressiveScan:
    """BBS's defining feature [19]: skyline points stream out in mindist
    order with work proportional to how far the scan has gone."""

    def make_scan(self, n=3000, seed=9, constrained=True):
        from repro.skyline.bbs import BBSScan

        pts = generate("independent", n, 3, seed=seed)
        tree = RTree.bulk_load_points(pts, max_entries=16)
        c = Constraints([0.1] * 3, [0.9] * 3) if constrained else None
        return BBSScan(tree, c), pts, c

    def test_points_emitted_in_mindist_order(self):
        scan, _, c = self.make_scan()
        sums = [np.maximum(p, c.lo).sum() for p in scan]
        assert all(a <= b + 1e-12 for a, b in zip(sums, sums[1:]))

    def test_full_scan_equals_batch(self):
        scan, pts, c = self.make_scan()
        streamed = np.array(list(scan))
        batch = bbs_skyline(
            RTree.bulk_load_points(pts, max_entries=16), c
        ).skyline
        assert len(streamed) == len(batch)
        np.testing.assert_array_equal(
            streamed[np.lexsort(streamed.T[::-1])],
            batch[np.lexsort(batch.T[::-1])],
        )

    def test_prefix_is_valid_partial_skyline(self):
        scan, pts, c = self.make_scan()
        first_five = [next(scan) for _ in range(5)]
        full = constrained_oracle(pts, c)
        full_keys = {tuple(p) for p in full}
        for p in first_five:
            assert tuple(p) in full_keys

    def test_partial_scan_touches_fewer_nodes(self):
        scan_full, _, _ = self.make_scan()
        list(scan_full)
        scan_partial, _, _ = self.make_scan()
        for _ in range(3):
            next(scan_partial)
        assert 0 < scan_partial.nodes_accessed < scan_full.nodes_accessed

    def test_exhausted_scan_raises(self):
        scan, _, _ = self.make_scan(n=50)
        list(scan)
        with pytest.raises(StopIteration):
            next(scan)

    def test_unconstrained_scan(self):
        scan, pts, _ = self.make_scan(constrained=False)
        streamed = np.array(list(scan))
        assert is_skyline(pts, streamed)


class TestBBSMethod:
    def test_query_outcome(self):
        pts = generate("independent", 1000, 3, seed=8)
        method = BBSMethod(pts, cost_model=DiskCostModel(), max_entries=16)
        c = Constraints([0.1, 0.1, 0.1], [0.9, 0.9, 0.9])
        outcome = method.query(c)
        assert outcome.method == "BBS"
        assert outcome.nodes_accessed > 0
        assert outcome.timings.fetch_io_ms > 0
        assert outcome.total_ms > 0
        expected = constrained_oracle(pts, c)
        assert len(outcome.skyline) == len(expected)
