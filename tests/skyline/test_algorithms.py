"""Cross-checks of the in-memory skyline algorithms (BNL, SFS, oracle)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.generator import generate
from repro.skyline.bnl import bnl_skyline
from repro.skyline.bskytree import bskytree_skyline
from repro.skyline.dandc import dandc_skyline
from repro.skyline.reference import brute_force_skyline, is_skyline
from repro.skyline.sfs import sfs_skyline

ALGORITHMS = [bnl_skyline, sfs_skyline, dandc_skyline, bskytree_skyline]


def point_sets(ndim=3, max_n=60):
    return arrays(
        np.float64,
        st.tuples(st.integers(0, max_n), st.just(ndim)),
        elements=st.floats(0, 1),
    )


class TestOracle:
    def test_empty(self):
        assert len(brute_force_skyline(np.empty((0, 2)))) == 0

    def test_single_point(self):
        assert list(brute_force_skyline(np.array([[1.0, 2.0]]))) == [0]

    def test_simple_2d(self):
        pts = np.array([[1, 5], [2, 2], [5, 1], [3, 3], [4, 4]], dtype=float)
        assert list(brute_force_skyline(pts)) == [0, 1, 2]

    def test_duplicates_all_kept(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert list(brute_force_skyline(pts)) == [0, 1]

    def test_dominated_duplicates_all_dropped(self):
        pts = np.array([[0.5, 0.5], [2.0, 2.0], [2.0, 2.0]])
        assert list(brute_force_skyline(pts)) == [0]

    def test_is_skyline_helper(self):
        pts = np.array([[1, 5], [2, 2], [5, 1], [3, 3]], dtype=float)
        assert is_skyline(pts, pts[[0, 1, 2]])
        assert not is_skyline(pts, pts[[0, 1]])
        assert not is_skyline(pts, pts[[0, 1, 3]])


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=["bnl", "sfs", "dandc", "bskytree"])
class TestAlgorithms:
    def test_empty(self, algorithm):
        assert len(algorithm(np.empty((0, 3)))) == 0

    def test_single_point(self, algorithm):
        assert list(algorithm(np.array([[0.3, 0.7]]))) == [0]

    def test_all_identical(self, algorithm):
        pts = np.tile([0.5, 0.5], (10, 1))
        assert len(algorithm(pts)) == 10

    def test_total_order_chain(self, algorithm):
        pts = np.array([[i, i] for i in range(10)], dtype=float)
        assert list(algorithm(pts)) == [0]

    def test_antichain(self, algorithm):
        pts = np.array([[i, 10 - i] for i in range(10)], dtype=float)
        assert len(algorithm(pts)) == 10

    @pytest.mark.parametrize(
        "distribution", ["independent", "correlated", "anticorrelated"]
    )
    def test_matches_oracle_on_distributions(self, algorithm, distribution):
        pts = generate(distribution, 300, 4, seed=7)
        got = np.sort(algorithm(pts))
        expected = brute_force_skyline(pts)
        np.testing.assert_array_equal(got, expected)

    def test_matches_oracle_high_dim(self, algorithm):
        pts = generate("independent", 150, 8, seed=3)
        np.testing.assert_array_equal(
            np.sort(algorithm(pts)), brute_force_skyline(pts)
        )

    def test_with_duplicated_block(self, algorithm):
        rng = np.random.default_rng(5)
        base = rng.uniform(0, 1, size=(40, 3))
        pts = np.vstack([base, base[:10]])  # exact duplicates
        np.testing.assert_array_equal(
            np.sort(algorithm(pts)), brute_force_skyline(pts)
        )

    @given(point_sets())
    @settings(max_examples=60, deadline=None)
    def test_property_matches_oracle(self, algorithm, pts):
        np.testing.assert_array_equal(
            np.sort(algorithm(pts)), brute_force_skyline(pts)
        )

    @given(point_sets(ndim=2))
    @settings(max_examples=40, deadline=None)
    def test_skyline_is_idempotent(self, algorithm, pts):
        first = pts[algorithm(pts)]
        second = first[algorithm(first)]
        assert len(first) == len(second)

    @given(point_sets(ndim=3, max_n=40))
    @settings(max_examples=40, deadline=None)
    def test_no_skyline_point_dominated(self, algorithm, pts):
        sky = pts[algorithm(pts)]
        for s in sky:
            le = np.all(pts <= s, axis=1)
            lt = np.any(pts < s, axis=1)
            assert not np.any(le & lt)


class TestSfsSpecifics:
    def test_returns_sorted_indices(self):
        pts = generate("independent", 200, 3, seed=1)
        idx = sfs_skyline(pts)
        assert np.all(np.diff(idx) > 0)

    def test_large_input_smoke(self):
        pts = generate("anticorrelated", 20_000, 3, seed=2)
        idx = sfs_skyline(pts)
        # anticorrelated data has a large skyline
        assert len(idx) > 100
        sky = pts[idx]
        # spot-check a sample against the definition
        rng = np.random.default_rng(0)
        for s in sky[rng.choice(len(sky), size=20)]:
            le = np.all(pts <= s, axis=1)
            lt = np.any(pts < s, axis=1)
            assert not np.any(le & lt)
