"""Tests for skyline cardinality estimation."""

import math

import numpy as np
import pytest

from repro.data.generator import generate
from repro.skyline.cardinality import (
    advise_skyline_algorithm,
    constrained_skyline_estimate,
    expected_skyline_size,
    expected_skyline_size_asymptotic,
)
from repro.skyline.sfs import sfs_skyline


class TestExactRecurrence:
    def test_base_cases(self):
        assert expected_skyline_size(0, 3) == 0.0
        assert expected_skyline_size(5, 1) == 1.0
        assert expected_skyline_size(1, 4) == 1.0

    def test_2d_is_harmonic_number(self):
        n = 100
        harmonic = sum(1.0 / k for k in range(1, n + 1))
        assert expected_skyline_size(n, 2) == pytest.approx(harmonic)

    def test_monotone_in_dimension(self):
        sizes = [expected_skyline_size(1000, d) for d in range(1, 6)]
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_monotone_in_n(self):
        sizes = [expected_skyline_size(n, 3) for n in [10, 100, 1000]]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_skyline_size(-1, 2)
        with pytest.raises(ValueError):
            expected_skyline_size(10, 0)

    @pytest.mark.parametrize("ndim", [2, 3, 4])
    def test_matches_empirical_independent(self, ndim):
        """The estimator should land within ~35% of the empirical mean."""
        n = 2000
        sizes = [
            len(sfs_skyline(generate("independent", n, ndim, seed=s)))
            for s in range(8)
        ]
        empirical = float(np.mean(sizes))
        estimate = expected_skyline_size(n, ndim)
        assert 0.65 * empirical <= estimate <= 1.35 * empirical

    def test_correlated_far_below_estimate(self):
        n = 2000
        estimate = expected_skyline_size(n, 3)
        correlated = len(sfs_skyline(generate("correlated", n, 3, seed=1)))
        anticorrelated = len(
            sfs_skyline(generate("anticorrelated", n, 3, seed=1))
        )
        assert correlated < estimate < anticorrelated


class TestAsymptotic:
    def test_tracks_exact_for_large_n(self):
        exact = expected_skyline_size(100_000, 3)
        approx = expected_skyline_size_asymptotic(100_000, 3)
        assert approx == pytest.approx(exact, rel=0.35)

    def test_formula(self):
        assert expected_skyline_size_asymptotic(math.e.__ceil__() ** 4, 2) >= 3.9

    def test_small_n(self):
        assert expected_skyline_size_asymptotic(0, 3) == 0.0
        assert expected_skyline_size_asymptotic(1, 3) == 1.0


class TestAdvisor:
    def test_constrained_estimate_scales_with_selectivity(self):
        full = constrained_skyline_estimate(10_000, 3, 1.0)
        small = constrained_skyline_estimate(10_000, 3, 0.01)
        assert small < full

    def test_selectivity_validation(self):
        with pytest.raises(ValueError):
            constrained_skyline_estimate(100, 2, 1.5)

    def test_low_dim_large_n_prefers_bnl(self):
        # 2-D skylines are ~ln n: tiny windows, BNL is fine.
        assert advise_skyline_algorithm(1_000_000, 2) == "bnl"

    def test_high_dim_prefers_sfs(self):
        assert advise_skyline_algorithm(10_000, 8) == "sfs"

    def test_empty_input(self):
        assert advise_skyline_algorithm(0, 3) == "bnl"
