"""Write-ahead log: framing, replay, rotation, torn tails, corruption."""

import struct

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.storage.faults import FaultInjector, SimulatedCrash
from repro.storage.wal import CorruptWALError, WriteAheadLog, _frame


def _fill(wal, n, start=1):
    for i in range(start, start + n):
        wal.append({"op": "noop", "i": i})


class TestAppendReplay:
    def test_lsns_dense_from_one(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        lsns = [wal.append({"i": i}) for i in range(5)]
        assert lsns == [1, 2, 3, 4, 5]
        wal.close()

    def test_replay_round_trips_payloads(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        payloads = [{"op": "insert", "rows": [float(i)]} for i in range(7)]
        for p in payloads:
            wal.append(p)
        wal.close()

        reopened = WriteAheadLog(tmp_path, fsync=False)
        records = reopened.records()
        assert [r.payload for r in records] == payloads
        assert [r.lsn for r in records] == list(range(1, 8))
        assert reopened.tail_status == "clean"
        reopened.close()

    def test_replay_after_lsn_skips_prefix(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        _fill(wal, 6)
        assert [r.lsn for r in wal.records(after_lsn=4)] == [5, 6]
        wal.close()

    def test_fsync_mode_counts_fsyncs(self, tmp_path):
        metrics = MetricsRegistry()
        wal = WriteAheadLog(tmp_path, fsync=True, metrics=metrics)
        _fill(wal, 3)
        assert metrics.counter_value("wal_fsyncs_total") == 3
        assert metrics.counter_value("wal_records_total") == 3
        wal.close()


class TestRotatePrune:
    def test_rotate_starts_new_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        _fill(wal, 3)
        wal.rotate()
        _fill(wal, 2, start=4)
        assert len(list(tmp_path.glob("wal-*.log"))) == 2
        # Replay spans both segments in order.
        assert [r.lsn for r in wal.records()] == [1, 2, 3, 4, 5]
        wal.close()

    def test_prune_removes_covered_sealed_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        _fill(wal, 4)
        wal.rotate()
        _fill(wal, 2, start=5)
        removed = wal.prune(upto_lsn=4)
        assert removed == 1
        assert [r.lsn for r in wal.records()] == [5, 6]
        wal.close()

    def test_prune_never_deletes_active_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        _fill(wal, 2)
        assert wal.prune(upto_lsn=100) == 0
        assert [r.lsn for r in wal.records()] == [1, 2]
        wal.close()

    def test_prune_keeps_segment_with_uncovered_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        _fill(wal, 4)
        wal.rotate()
        assert wal.prune(upto_lsn=3) == 0
        wal.close()


class TestTornTail:
    def _truncate_tail(self, tmp_path, cut):
        path = max(tmp_path.glob("wal-*.log"))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - cut])

    def test_torn_tail_truncated_on_open(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        _fill(wal, 5)
        wal.close()
        # Chop a few bytes off the last frame: a torn write.
        self._truncate_tail(tmp_path, 3)

        metrics = MetricsRegistry()
        reopened = WriteAheadLog(tmp_path, fsync=False, metrics=metrics)
        assert reopened.opened_tail_status == "torn"
        assert metrics.counter_value("wal_torn_tails_truncated_total") == 1
        # The torn record is gone; the valid prefix survives.
        assert [r.lsn for r in reopened.records()] == [1, 2, 3, 4]
        assert reopened.tail_status == "clean"
        reopened.close()

    def test_appends_continue_after_torn_truncation(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        _fill(wal, 3)
        wal.close()
        self._truncate_tail(tmp_path, 2)

        reopened = WriteAheadLog(tmp_path, fsync=False)
        assert reopened.last_lsn == 2
        assert reopened.append({"op": "next"}) == 3
        assert [r.lsn for r in reopened.records()] == [1, 2, 3]
        reopened.close()

    def test_short_header_is_torn(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        _fill(wal, 2)
        wal.close()
        path = max(tmp_path.glob("wal-*.log"))
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02\x03")  # less than one header
        reopened = WriteAheadLog(tmp_path, fsync=False)
        assert reopened.opened_tail_status == "torn"
        assert len(reopened.records()) == 2
        reopened.close()


class TestCorruption:
    def test_midfile_bitflip_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        _fill(wal, 5)
        wal.close()
        path = max(tmp_path.glob("wal-*.log"))
        blob = bytearray(path.read_bytes())
        # Flip a payload byte of the FIRST record: the later valid frames
        # prove this is bit rot, not a torn tail.
        blob[struct.calcsize("<QII") + 2] ^= 0xFF
        path.write_bytes(bytes(blob))

        with pytest.raises(CorruptWALError):
            WriteAheadLog(tmp_path, fsync=False)

    def test_torn_tail_in_sealed_segment_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        _fill(wal, 3)
        wal.rotate()
        _fill(wal, 1, start=4)
        wal.close()
        sealed = min(tmp_path.glob("wal-*.log"))
        blob = sealed.read_bytes()
        sealed.write_bytes(blob[:-2])
        with pytest.raises(CorruptWALError):
            WriteAheadLog(tmp_path, fsync=False)


class TestCrashPoints:
    def test_armed_append_crash_leaves_no_frame(self, tmp_path):
        injector = FaultInjector(profile="none", seed=0)
        wal = WriteAheadLog(tmp_path, fsync=False, injector=injector)
        _fill(wal, 2)
        injector.arm_crash("wal.append", after=0)
        with pytest.raises(SimulatedCrash):
            wal.append({"op": "doomed"})
        wal.close_handle()
        reopened = WriteAheadLog(tmp_path, fsync=False)
        assert [r.lsn for r in reopened.records()] == [1, 2]
        assert reopened.opened_tail_status == "clean"
        reopened.close()

    def test_torn_append_crash_leaves_truncatable_prefix(self, tmp_path):
        injector = FaultInjector(profile="none", seed=0)
        wal = WriteAheadLog(tmp_path, fsync=False, injector=injector)
        _fill(wal, 2)
        injector.arm_crash("wal.append", after=0, torn_fraction=0.5)
        with pytest.raises(SimulatedCrash):
            wal.append({"op": "doomed", "padding": "x" * 64})
        wal.close_handle()
        reopened = WriteAheadLog(tmp_path, fsync=False)
        assert reopened.opened_tail_status == "torn"
        assert [r.lsn for r in reopened.records()] == [1, 2]
        # The committed prefix is intact and appendable.
        assert reopened.append({"op": "next"}) == 3
        reopened.close()


class TestLsnHorizon:
    def test_reopen_after_full_prune_does_not_reuse_lsns(self, tmp_path):
        """Regression guard for the checkpoint-prune LSN horizon.

        After a checkpoint prunes every covered segment the reopened log is
        empty; ``last_lsn`` must be restored by the checkpointing layer (see
        DurabilityManager/DiskCacheBackend) or new appends reuse skipped
        LSNs.  The WAL itself reports 0 here -- this pins the contract the
        callers compensate for.
        """
        wal = WriteAheadLog(tmp_path, fsync=False)
        _fill(wal, 4)
        wal.rotate()
        wal.prune(upto_lsn=4)
        wal.close()

        reopened = WriteAheadLog(tmp_path, fsync=False)
        assert reopened.last_lsn == 0  # the caller must restore the horizon
        reopened.last_lsn = max(reopened.last_lsn, 4)
        assert reopened.append({"op": "next"}) == 5
        reopened.close()

    def test_frame_roundtrip_is_stable(self, tmp_path):
        frame = _frame(7, b'{"op":"x"}')
        path = tmp_path / "wal-00000001.log"
        path.write_bytes(frame)
        wal = WriteAheadLog(tmp_path, fsync=False)
        (record,) = wal.records()
        assert record.lsn == 7
        assert record.payload == {"op": "x"}
        wal.close()
