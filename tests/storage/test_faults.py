"""Tests for deterministic fault injection (profiles, injector, wrapper)."""

import numpy as np
import pytest

from repro.data.generator import independent
from repro.geometry.box import Box
from repro.storage.faults import (
    PROFILES,
    FaultInjector,
    FaultProfile,
    FaultyDiskTable,
    TransientStorageError,
    get_profile,
)
from repro.storage.table import DiskTable


def full_box(ndim):
    return Box.closed([0.0] * ndim, [1.0] * ndim)


class TestFaultProfile:
    def test_named_profiles_resolve(self):
        assert get_profile("default") is PROFILES["default"]
        assert get_profile(PROFILES["heavy"]) is PROFILES["heavy"]
        with pytest.raises(ValueError, match="unknown fault profile"):
            get_profile("nope")

    def test_default_profile_is_five_percent(self):
        assert PROFILES["default"].total_rate == pytest.approx(0.05)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(transient_io=1.5)
        with pytest.raises(ValueError):
            FaultProfile(transient_io=0.6, latency=0.6)

    def test_scaled(self):
        doubled = PROFILES["default"].scaled(2.0)
        assert doubled.total_rate == pytest.approx(0.10)
        assert doubled.latency_ms == PROFILES["default"].latency_ms


class TestDeterministicReplay:
    def drive(self, seed, calls=500):
        injector = FaultInjector(profile="heavy", seed=seed)
        for _ in range(calls):
            injector.draw("range_query")
        return injector.trace

    def test_same_seed_identical_trace(self):
        assert self.drive(seed=42) == self.drive(seed=42)

    def test_different_seed_different_trace(self):
        assert self.drive(seed=1) != self.drive(seed=2)

    def test_trace_records_op_and_ordering(self):
        injector = FaultInjector(profile="heavy", seed=0)
        for op in ("range_query", "full_scan") * 200:
            injector.draw(op)
        indices = [e.index for e in injector.trace]
        assert indices == sorted(indices)
        assert {e.op for e in injector.trace} <= {"range_query", "full_scan"}

    def test_fault_counts_match_trace(self):
        injector = FaultInjector(profile="heavy", seed=3)
        for _ in range(400):
            injector.draw("range_query")
        counts = injector.fault_counts()
        assert sum(counts.values()) == len(injector.trace)
        assert sum(counts.values()) > 0  # 20% rate over 400 draws

    def test_outage_does_not_consume_prng_state(self):
        baseline = self.drive(seed=7, calls=100)
        injector = FaultInjector(profile="heavy", seed=7)
        injector.force_outage(10)
        for _ in range(10):
            assert injector.draw("range_query") == "transient_io"
        assert not injector.in_outage
        for _ in range(100):
            injector.draw("range_query")
        post_outage = [e for e in injector.trace if e.index > 10]
        assert [(e.op, e.kind) for e in post_outage] == [
            (e.op, e.kind) for e in baseline
        ]


class TestFaultyDiskTable:
    def setup_method(self):
        self.data = independent(300, 2, seed=0)
        self.table = DiskTable(self.data)

    def faulty(self, profile, seed=0):
        return FaultyDiskTable(self.table, FaultInjector(profile, seed=seed))

    def test_none_profile_is_transparent(self):
        clean = self.table.range_query(full_box(2))
        wrapped = self.faulty("none").range_query(full_box(2))
        np.testing.assert_array_equal(clean.points, wrapped.points)
        np.testing.assert_array_equal(clean.rowids, wrapped.rowids)

    def test_delegates_metadata(self):
        wrapped = self.faulty("none")
        assert wrapped.ndim == self.table.ndim
        assert wrapped.n == self.table.n
        assert wrapped.stats is self.table.stats

    def test_transient_raises_ioerror(self):
        wrapped = self.faulty(FaultProfile(transient_io=1.0))
        with pytest.raises(TransientStorageError):
            wrapped.range_query(full_box(2))
        assert isinstance(TransientStorageError("x"), IOError)

    def test_latency_charges_simulated_io(self):
        before = self.table.stats.simulated_io_ms
        self.table.range_query(full_box(2))
        clean_cost = self.table.stats.simulated_io_ms - before

        profile = FaultProfile(latency=1.0, latency_ms=33.0)
        wrapped = self.faulty(profile)
        before = self.table.stats.simulated_io_ms
        wrapped.range_query(full_box(2))
        spiked_cost = self.table.stats.simulated_io_ms - before
        assert spiked_cost == pytest.approx(clean_cost + 33.0)

    def test_truncation_leaves_detectable_mismatch(self):
        wrapped = self.faulty(FaultProfile(truncate=1.0))
        result = wrapped.range_query(full_box(2))
        assert len(result.points) < len(result.rowids)

    def test_truncation_survives_fetch_boxes_aggregation(self):
        wrapped = self.faulty(FaultProfile(truncate=1.0))
        halves = [
            Box.closed([0.0, 0.0], [0.5, 1.0]),
            Box.closed([0.5, 0.0], [1.0, 1.0]),
        ]
        result = wrapped.fetch_boxes(halves)
        assert len(result.points) != len(result.rowids)

    def test_corruption_injects_nan(self):
        wrapped = self.faulty(FaultProfile(corrupt=1.0))
        result = wrapped.range_query(full_box(2))
        assert np.isnan(result.points).any()
        # The underlying table is untouched (corruption on the read path).
        assert np.isfinite(self.table.range_query(full_box(2)).points).all()

    def test_faults_counted_in_metrics(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        injector = FaultInjector(FaultProfile(transient_io=1.0), metrics=metrics)
        wrapped = FaultyDiskTable(self.table, injector)
        with pytest.raises(TransientStorageError):
            wrapped.range_query(full_box(2))
        assert (
            metrics.counter_value(
                "faults_injected_total", kind="transient_io", op="range_query"
            )
            == 1
        )
