"""DurabilityManager: log-before-apply, checkpoints, crash recovery."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.storage.durability import DurabilityManager
from repro.storage.faults import FaultInjector, SimulatedCrash
from repro.storage.table import CorruptTableError, DiskTable


def _table(n=20, d=3, seed=0):
    rng = np.random.default_rng(seed)
    return DiskTable(rng.random((n, d)))


def _live_rows(table):
    rows = [table.row(i) for i in range(table.n) if table._alive[i]]
    return np.sort(np.asarray(rows), axis=0)


class TestLogApplyRecover:
    def test_recover_replays_tail_onto_checkpoint(self, tmp_path):
        table = _table()
        manager = DurabilityManager(tmp_path, fsync=False, checkpoint_every=None)
        manager.ensure_checkpoint(table)

        rng = np.random.default_rng(1)
        new_rows = rng.random((3, 3))
        manager.log_insert(new_rows, start=table.n)
        table.append(new_rows)
        manager.log_delete([0, 5], table._data[[0, 5]])
        table.delete(np.array([0, 5], dtype=np.int64))
        manager.close()  # no checkpoint: the tail must carry the updates

        recovered, report = DurabilityManager(
            tmp_path, fsync=False, checkpoint_every=None
        ).recover()
        assert report.replayed_ops == 2
        assert report.tail_status == "clean"
        assert recovered.n == table.n
        assert recovered.live_count == table.live_count
        np.testing.assert_array_equal(_live_rows(recovered), _live_rows(table))

    def test_recover_without_checkpoint_raises(self, tmp_path):
        manager = DurabilityManager(tmp_path, fsync=False)
        with pytest.raises(CorruptTableError):
            manager.recover()

    def test_insert_replay_is_idempotent_over_newer_snapshot(self, tmp_path):
        """A crash between snapshot replace and meta replace leaves the WAL
        holding batches the snapshot already contains; ``start`` skips them."""
        table = _table()
        manager = DurabilityManager(tmp_path, fsync=False, checkpoint_every=None)
        manager.ensure_checkpoint(table)

        rows = np.random.default_rng(2).random((2, 3))
        manager.log_insert(rows, start=table.n)
        table.append(rows)
        # Simulate the half-finished checkpoint: table snapshot written,
        # meta (and WAL prune) never happened.
        table.save(manager.table_path)
        manager.close()

        recovered, report = DurabilityManager(
            tmp_path, fsync=False, checkpoint_every=None
        ).recover()
        # The batch was replayed as a record but skipped as an append.
        assert report.replayed_ops == 1
        assert recovered.n == table.n
        np.testing.assert_array_equal(_live_rows(recovered), _live_rows(table))

    def test_insert_replay_gap_is_loud(self, tmp_path):
        table = _table()
        manager = DurabilityManager(tmp_path, fsync=False, checkpoint_every=None)
        manager.ensure_checkpoint(table)
        # Log a batch claiming a heap offset beyond the checkpointed size:
        # a missing predecessor batch, which recovery must not paper over.
        manager.log_insert(np.ones((1, 3)), start=table.n + 4)
        manager.close()
        with pytest.raises(CorruptTableError):
            DurabilityManager(tmp_path, fsync=False, checkpoint_every=None).recover()

    def test_delete_replay_is_idempotent(self, tmp_path):
        table = _table()
        manager = DurabilityManager(tmp_path, fsync=False, checkpoint_every=None)
        manager.ensure_checkpoint(table)
        manager.log_delete([3], table._data[[3]])
        table.delete(np.array([3], dtype=np.int64))
        # Checkpoint AFTER the apply, keeping the WAL tail (no prune racing
        # here: write the snapshot only, as a mid-checkpoint crash would).
        table.save(manager.table_path)
        manager.close()

        recovered, report = DurabilityManager(
            tmp_path, fsync=False, checkpoint_every=None
        ).recover()
        assert report.replayed_ops == 1  # replayed, tombstone already set
        assert recovered.live_count == table.live_count


class TestCheckpointing:
    def test_checkpoint_prunes_wal_and_preserves_lsn_horizon(self, tmp_path):
        table = _table()
        metrics = MetricsRegistry()
        manager = DurabilityManager(
            tmp_path, fsync=False, checkpoint_every=None, metrics=metrics
        )
        manager.ensure_checkpoint(table)
        for i in range(3):
            rows = np.full((1, 3), 0.1 * (i + 1))
            manager.log_insert(rows, start=table.n)
            table.append(rows)
        manager.checkpoint(table)
        last = manager.wal.last_lsn
        manager.close()

        # Reopen: the pruned WAL is empty, but the horizon must persist so
        # new appends never reuse LSNs replay would skip.
        reopened = DurabilityManager(tmp_path, fsync=False, checkpoint_every=None)
        assert reopened.wal.last_lsn == last
        rows = np.full((1, 3), 0.9)
        lsn = reopened.log_insert(rows, start=table.n)
        assert lsn == last + 1
        table.append(rows)
        reopened.close()

        recovered, report = DurabilityManager(
            tmp_path, fsync=False, checkpoint_every=None
        ).recover()
        assert report.replayed_ops == 1
        np.testing.assert_array_equal(_live_rows(recovered), _live_rows(table))

    def test_maybe_checkpoint_fires_on_threshold(self, tmp_path):
        table = _table()
        manager = DurabilityManager(tmp_path, fsync=False, checkpoint_every=2)
        manager.ensure_checkpoint(table)
        rows = np.full((1, 3), 0.5)
        manager.log_insert(rows, start=table.n)
        table.append(rows)
        assert manager.maybe_checkpoint(table) is False
        rows = np.full((1, 3), 0.6)
        manager.log_insert(rows, start=table.n)
        table.append(rows)
        assert manager.maybe_checkpoint(table) is True
        assert manager._ops_since_checkpoint == 0

    def test_checkpoint_every_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DurabilityManager(tmp_path, checkpoint_every=0)


class TestCrashRecovery:
    def test_crash_mid_checkpoint_recovers_from_wal(self, tmp_path):
        table = _table()
        injector = FaultInjector(profile="none", seed=0)
        manager = DurabilityManager(
            tmp_path, fsync=False, checkpoint_every=None, injector=injector
        )
        manager.ensure_checkpoint(table)
        rows = np.random.default_rng(3).random((2, 3))
        manager.log_insert(rows, start=table.n)
        table.append(rows)

        injector.arm_crash("table.checkpoint", after=0)
        with pytest.raises(SimulatedCrash):
            manager.checkpoint(table)
        manager.wal.close_handle()

        injector.disarm_crashes()
        recovered, report = DurabilityManager(
            tmp_path, fsync=False, checkpoint_every=None
        ).recover()
        # The old checkpoint survives (atomic replace never landed) and the
        # WAL tail carries the batch.
        assert report.replayed_ops == 1
        np.testing.assert_array_equal(_live_rows(recovered), _live_rows(table))

    def test_crash_mid_append_loses_only_uncommitted_batch(self, tmp_path):
        table = _table()
        injector = FaultInjector(profile="none", seed=0)
        manager = DurabilityManager(
            tmp_path, fsync=False, checkpoint_every=None, injector=injector
        )
        manager.ensure_checkpoint(table)
        committed = np.random.default_rng(4).random((1, 3))
        manager.log_insert(committed, start=table.n)
        table.append(committed)

        injector.arm_crash("wal.append", after=0, torn_fraction=0.4)
        doomed = np.random.default_rng(5).random((1, 3))
        with pytest.raises(SimulatedCrash):
            manager.log_insert(doomed, start=table.n)
        manager.wal.close_handle()

        injector.disarm_crashes()
        recovered, report = DurabilityManager(
            tmp_path, fsync=False, checkpoint_every=None
        ).recover()
        assert report.tail_status == "torn"
        assert report.replayed_ops == 1  # only the committed batch
        expected = table  # doomed batch was never applied either
        np.testing.assert_array_equal(_live_rows(recovered), _live_rows(expected))

    def test_recovery_report_serializes_scalars(self, tmp_path):
        table = _table()
        manager = DurabilityManager(tmp_path, fsync=False, checkpoint_every=None)
        manager.ensure_checkpoint(table)
        rows = np.full((1, 3), 0.2)
        manager.log_insert(rows, start=table.n)
        table.append(rows)
        manager.close()
        _, report = DurabilityManager(
            tmp_path, fsync=False, checkpoint_every=None
        ).recover()
        as_dict = report.to_dict()
        assert as_dict["replayed_ops"] == 1
        assert set(as_dict) == {
            "checkpoint_lsn", "last_lsn", "replayed_ops", "tail_status",
            "live_rows",
        }
