"""Tests for :mod:`repro.storage.sharding`."""

import numpy as np
import pytest

from repro.storage.sharding import ShardedTable, hash_key
from repro.storage.table import DiskTable


def make_data(n=400, ndim=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 1, size=(n, ndim))


class TestConstruction:
    def test_range_partitioning_covers_every_row(self):
        data = make_data()
        table = ShardedTable(data, 4, mode="range")
        assert table.n_shards == 4
        assert table.n == len(data)
        assert sum(s.table.live_count for s in table) == len(data)
        assert table.live_count == len(data)

    def test_range_partitioning_is_ordered_on_key(self):
        data = make_data()
        table = ShardedTable(data, 4, mode="range", key_dim=1)
        highs = [
            s.table.data_view()[:, 1].max() for s in table if s.table.live_count
        ]
        lows = [s.table.data_view()[:, 1].min() for s in table if s.table.live_count]
        for prev_hi, next_lo in zip(highs, lows[1:]):
            assert prev_hi <= next_lo

    def test_hash_partitioning_routes_deterministically(self):
        data = make_data()
        table = ShardedTable(data, 4, mode="hash", key_dim=2)
        for shard in table:
            for row in shard.table.data_view():
                assert hash_key(row[2], 4) == shard.shard_id

    def test_explicit_assignments(self):
        data = make_data(n=10)
        assignments = np.array([0, 1, 2, 0, 1, 2, 0, 1, 2, 0])
        table = ShardedTable(data, 3, mode="explicit", assignments=assignments)
        assert [s.table.live_count for s in table] == [4, 3, 3]

    def test_explicit_requires_assignments(self):
        with pytest.raises(ValueError):
            ShardedTable(make_data(), 2, mode="explicit")

    def test_assignments_rejected_for_other_modes(self):
        with pytest.raises(ValueError):
            ShardedTable(make_data(), 2, mode="range", assignments=np.zeros(400, dtype=int))

    def test_bad_mode_and_counts(self):
        with pytest.raises(ValueError):
            ShardedTable(make_data(), 2, mode="round-robin")
        with pytest.raises(ValueError):
            ShardedTable(make_data(), 0)
        with pytest.raises(ValueError):
            ShardedTable(make_data(ndim=3), 2, key_dim=3)

    def test_single_shard_holds_everything(self):
        data = make_data()
        table = ShardedTable(data, 1)
        assert table[0].table.live_count == len(data)
        assert table.summaries[0].count == len(data)

    def test_empty_shards_allowed(self):
        # All keys identical in range mode: every quantile boundary
        # coincides, so one shard takes all rows and the rest stay empty.
        data = np.column_stack([np.full(50, 0.5), np.linspace(0, 1, 50)])
        table = ShardedTable(data, 4, mode="range", key_dim=0)
        sizes = sorted(s.table.live_count for s in table)
        assert sum(sizes) == 50
        assert sizes[:3] == [0, 0, 0]

    def test_table_factory(self):
        data = make_data()
        table = ShardedTable(
            data, 2, table_factory=lambda rows: DiskTable(rows, plan="best_index")
        )
        assert all(s.table.plan == "best_index" for s in table)


class TestSummaries:
    def test_mbr_matches_shard_data(self):
        data = make_data()
        table = ShardedTable(data, 4)
        for shard in table:
            view = shard.table.data_view()
            if not len(view):
                assert shard.summary.empty
                continue
            np.testing.assert_allclose(shard.summary.mbr_lo, view.min(axis=0))
            np.testing.assert_allclose(shard.summary.mbr_hi, view.max(axis=0))
            assert shard.summary.count == len(view)

    def test_record_append_grows_mbr(self):
        data = make_data()
        table = ShardedTable(data, 2)
        outside = np.array([[2.0, 2.0, 2.0]])
        table[1].table.append(outside)
        changed = table.record_append(1, outside)
        assert changed
        np.testing.assert_allclose(table.summaries[1].mbr_hi, [2.0, 2.0, 2.0])

    def test_record_append_inside_mbr_does_not_change_it(self):
        data = make_data()
        table = ShardedTable(data, 2)
        summary = table.summaries[0]
        count_before = summary.count
        inside = ((summary.mbr_lo + summary.mbr_hi) / 2).reshape(1, -1)
        table[0].table.append(inside)
        assert not table.record_append(0, inside)
        assert table.summaries[0].count == count_before + 1

    def test_record_delete_refreshes_count_keeps_mbr_superset(self):
        data = make_data()
        table = ShardedTable(data, 2)
        shard = table[0]
        before = shard.summary.mbr_hi.copy()
        extra = ((shard.summary.mbr_lo + shard.summary.mbr_hi) / 2).reshape(1, -1)
        rowids = shard.table.append(extra)
        table.record_append(0, extra)
        shard.table.delete(rowids)
        table.record_delete(0)
        assert table.summaries[0].count == shard.table.live_count
        np.testing.assert_allclose(table.summaries[0].mbr_hi, before)

    def test_as_dict_roundtrips_json(self):
        import json

        table = ShardedTable(make_data(), 2)
        payload = json.dumps([s.as_dict() for s in table.summaries])
        assert json.loads(payload)[0]["shard_id"] == 0


class TestAccounting:
    def test_stats_total_sums_shards(self):
        from repro.geometry.box import Box

        data = make_data()
        table = ShardedTable(data, 4)
        for shard in table:
            shard.table.range_query(Box.closed([0, 0, 0], [1, 1, 1]))
        total = table.stats_total()
        assert total.points_read == sum(
            s.table.stats.points_read for s in table
        )
        assert total.points_read == len(data)

    def test_estimate_count_sums_shards(self):
        data = make_data()
        table = ShardedTable(data, 4)
        est = table.estimate_count(0, 0.2, 0.8)
        flat = DiskTable(data).estimate_count(0, 0.2, 0.8)
        assert est == pytest.approx(flat, rel=0.25, abs=20)

    def test_route_matches_partitioning(self):
        data = make_data()
        for mode in ("range", "hash"):
            table = ShardedTable(data, 4, mode=mode)
            for shard in table:
                for row in shard.table.data_view()[:5]:
                    assert table.route(row) == shard.shard_id

    def test_route_rejected_for_explicit(self):
        data = make_data(n=6)
        table = ShardedTable(
            data, 2, mode="explicit", assignments=np.array([0, 1] * 3)
        )
        with pytest.raises(ValueError):
            table.route(data[0])
