"""Tests for DiskTable archive integrity validation on load."""

import numpy as np
import pytest

from repro.data.generator import independent
from repro.storage import CorruptTableError, DiskTable


@pytest.fixture
def saved(tmp_path):
    data = independent(100, 3, seed=0)
    table = DiskTable(data)
    path = tmp_path / "table.npz"
    table.save(path)
    return path, data


def rewrite(path, mutate):
    """Load the npz payload, apply ``mutate(dict)``, write it back."""
    with np.load(path, allow_pickle=False) as archive:
        payload = {name: archive[name] for name in archive.files}
    mutate(payload)
    np.savez(path, **payload)


class TestRoundTrip:
    def test_clean_round_trip(self, saved):
        path, data = saved
        table = DiskTable.load(path)
        np.testing.assert_array_equal(table._data, data)

    def test_checksum_written(self, saved):
        path, _ = saved
        with np.load(path, allow_pickle=False) as archive:
            assert "checksum" in archive.files

    def test_pre_checksum_archive_accepted(self, saved):
        path, data = saved
        rewrite(path, lambda p: p.pop("checksum"))
        table = DiskTable.load(path)
        np.testing.assert_array_equal(table._data, data)


class TestCorruptionDetected:
    def test_missing_key(self, saved):
        path, _ = saved
        rewrite(path, lambda p: p.pop("alive"))
        with pytest.raises(CorruptTableError, match="missing required keys"):
            DiskTable.load(path)

    def test_wrong_data_shape(self, saved):
        path, _ = saved

        def flatten(p):
            p["data"] = p["data"].ravel()
            p["checksum"] = np.array(0, dtype=np.uint32)

        rewrite(path, flatten)
        with pytest.raises(CorruptTableError, match="2-D"):
            DiskTable.load(path)

    def test_alive_length_mismatch(self, saved):
        path, _ = saved

        def shrink(p):
            p["alive"] = p["alive"][:-5]
            p["checksum"] = np.array(0, dtype=np.uint32)

        rewrite(path, shrink)
        with pytest.raises(CorruptTableError, match="alive bitmap length"):
            DiskTable.load(path)

    def test_non_finite_rows(self, saved):
        path, _ = saved

        def rot(p):
            data = p["data"].copy()
            data[3, 1] = np.nan
            p["data"] = data
            # recompute checksum so only the NaN check can fire
            from repro.storage.table import _archive_checksum

            p["checksum"] = np.array(
                _archive_checksum(data, p["alive"]), dtype=np.uint32
            )

        rewrite(path, rot)
        with pytest.raises(CorruptTableError, match="non-finite"):
            DiskTable.load(path)

    def test_checksum_mismatch(self, saved):
        path, _ = saved

        def flip(p):
            data = p["data"].copy()
            data[0, 0] += 0.25  # still finite, still in shape
            p["data"] = data

        rewrite(path, flip)
        with pytest.raises(CorruptTableError, match="checksum mismatch"):
            DiskTable.load(path)

    def test_bad_plan(self, saved):
        path, _ = saved
        rewrite(path, lambda p: p.update(plan=np.array("voodoo")))
        with pytest.raises(CorruptTableError, match="unknown plan"):
            DiskTable.load(path)

    def test_bad_cost_model_shape(self, saved):
        path, _ = saved
        rewrite(path, lambda p: p.update(cost_model=np.array([1.0, 2.0])))
        with pytest.raises(CorruptTableError, match="cost_model"):
            DiskTable.load(path)

    def test_corrupt_error_is_value_error(self):
        assert issubclass(CorruptTableError, ValueError)
