"""Tests for the buffer pool (warm-cache mode of the storage layer)."""

import numpy as np
import pytest

from repro.data.generator import generate
from repro.geometry.box import Box
from repro.storage.costmodel import DiskCostModel
from repro.storage.pager import BufferPool
from repro.storage.table import DiskTable


class TestBufferPool:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    def test_first_access_misses(self):
        pool = BufferPool(4)
        assert pool.access(np.array([0, 16, 32])) == 3
        assert pool.misses == 3

    def test_repeat_access_hits(self):
        pool = BufferPool(4)
        pool.access(np.array([0, 1]))
        assert pool.access(np.array([0, 1])) == 0
        assert pool.hits == 2

    def test_lru_eviction(self):
        pool = BufferPool(2)
        pool.access(np.array([1]))
        pool.access(np.array([2]))
        pool.access(np.array([1]))  # refresh 1; 2 is now LRU
        pool.access(np.array([3]))  # evicts 2
        assert pool.access(np.array([1])) == 0  # still cached
        assert pool.access(np.array([2])) == 1  # was evicted

    def test_duplicate_pages_counted_once(self):
        pool = BufferPool(4)
        assert pool.access(np.array([5, 5, 5])) == 1

    def test_len_bounded(self):
        pool = BufferPool(3)
        pool.access(np.arange(10))
        assert len(pool) == 3


class TestWarmTable:
    @pytest.fixture()
    def tables(self):
        data = generate("independent", 2000, 2, seed=4)
        model = DiskCostModel(page_size=32)
        cold = DiskTable(data, cost_model=model)
        warm = DiskTable(data, cost_model=model, buffer_pages=1000)
        return cold, warm

    def test_repeat_query_free_when_warm(self, tables):
        cold, warm = tables
        box = Box.closed([0.2, 0.2], [0.6, 0.6])
        warm.range_query(box)
        before = warm.stats.snapshot()
        warm.range_query(box)
        delta = warm.stats.delta_since(before)
        assert delta.pages_read == 0
        assert delta.simulated_io_ms == 0.0
        assert delta.buffer_hits > 0
        # same query on the cold table pays full price both times
        cold.range_query(box)
        before = cold.stats.snapshot()
        cold.range_query(box)
        assert cold.stats.delta_since(before).simulated_io_ms > 0

    def test_small_buffer_thrashes(self):
        data = generate("independent", 2000, 2, seed=5)
        table = DiskTable(
            data, cost_model=DiskCostModel(page_size=32), buffer_pages=1
        )
        box = Box.closed([0.0, 0.0], [1.0, 1.0])
        table.range_query(box)
        before = table.stats.snapshot()
        table.range_query(box)
        # more pages than the buffer holds: almost everything misses again
        assert table.stats.delta_since(before).pages_read > 50

    def test_results_identical_with_and_without_buffer(self, tables):
        cold, warm = tables
        box = Box.closed([0.1, 0.3], [0.7, 0.9])
        a = cold.range_query(box)
        b = warm.range_query(box)
        assert sorted(a.rowids) == sorted(b.rowids)
