"""Tests for :mod:`repro.storage.costmodel` and :mod:`repro.storage.pager`."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.costmodel import DiskCostModel
from repro.storage.pager import IOStats, page_runs


class TestCostModel:
    def test_defaults(self):
        model = DiskCostModel()
        assert model.fetch_cost_ms(0, 0) == 0.0
        assert model.fetch_cost_ms(1, 10) == pytest.approx(
            model.seek_ms + 10 * model.page_read_ms
        )

    def test_sequential_scan(self):
        model = DiskCostModel(seek_ms=4.0, page_read_ms=1.0)
        assert model.sequential_scan_cost_ms(0) == 0.0
        assert model.sequential_scan_cost_ms(100) == pytest.approx(104.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskCostModel(page_size=0)
        with pytest.raises(ValueError):
            DiskCostModel(seek_ms=-1.0)

    def test_random_access_costs_more_than_sequential(self):
        """Core premise of the paper's Figure 10: scattered reads are slower."""
        model = DiskCostModel()
        scattered = model.fetch_cost_ms(n_seeks=50, n_pages=50)
        sequential = model.fetch_cost_ms(n_seeks=1, n_pages=50)
        assert scattered > sequential


class TestPageRuns:
    def test_empty(self):
        assert page_runs(np.array([], dtype=np.int64), 10) == (0, 0)

    def test_single_page(self):
        assert page_runs(np.array([0, 1, 2]), 10) == (1, 1)

    def test_contiguous_pages_one_run(self):
        rows = np.array([5, 15, 25])  # pages 0, 1, 2
        assert page_runs(rows, 10) == (3, 1)

    def test_gap_starts_new_run(self):
        rows = np.array([5, 95])  # pages 0 and 9
        assert page_runs(rows, 10) == (2, 2)

    def test_duplicate_rows_counted_once(self):
        rows = np.array([3, 3, 3])
        assert page_runs(rows, 10) == (1, 1)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1))
    def test_runs_never_exceed_pages(self, rows):
        n_pages, n_runs = page_runs(np.array(rows), 16)
        assert 1 <= n_runs <= n_pages
        assert n_pages == len({r // 16 for r in rows})


class TestIOStats:
    def test_reset(self):
        stats = IOStats(points_read=5, seeks=2, simulated_io_ms=1.5)
        stats.reset()
        assert stats.points_read == 0
        assert stats.simulated_io_ms == 0.0

    def test_snapshot_is_independent(self):
        stats = IOStats(points_read=5)
        snap = stats.snapshot()
        stats.points_read = 99
        assert snap.points_read == 5

    def test_delta_since(self):
        stats = IOStats(points_read=10, pages_read=3, simulated_io_ms=2.0)
        snap = stats.snapshot()
        stats.points_read += 7
        stats.simulated_io_ms += 1.0
        delta = stats.delta_since(snap)
        assert delta.points_read == 7
        assert delta.pages_read == 0
        assert delta.simulated_io_ms == pytest.approx(1.0)

    def test_add(self):
        a = IOStats(points_read=1, range_queries=2)
        b = IOStats(points_read=3, empty_queries=1)
        a.add(b)
        assert a.points_read == 4
        assert a.range_queries == 2
        assert a.empty_queries == 1
