"""Tests for :mod:`repro.storage.costmodel` and :mod:`repro.storage.pager`."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.costmodel import DiskCostModel
from repro.storage.pager import IOStats, page_runs


class TestCostModel:
    def test_defaults(self):
        model = DiskCostModel()
        assert model.fetch_cost_ms(0, 0) == 0.0
        assert model.fetch_cost_ms(1, 10) == pytest.approx(
            model.seek_ms + 10 * model.page_read_ms
        )

    def test_sequential_scan(self):
        model = DiskCostModel(seek_ms=4.0, page_read_ms=1.0)
        assert model.sequential_scan_cost_ms(0) == 0.0
        assert model.sequential_scan_cost_ms(100) == pytest.approx(104.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskCostModel(page_size=0)
        with pytest.raises(ValueError):
            DiskCostModel(seek_ms=-1.0)

    def test_random_access_costs_more_than_sequential(self):
        """Core premise of the paper's Figure 10: scattered reads are slower."""
        model = DiskCostModel()
        scattered = model.fetch_cost_ms(n_seeks=50, n_pages=50)
        sequential = model.fetch_cost_ms(n_seeks=1, n_pages=50)
        assert scattered > sequential


class TestPredictFetch:
    def test_zero_rows_is_free(self):
        forecast = DiskCostModel().predict_fetch(0)
        assert forecast.points == 0
        assert forecast.pages == 0
        assert forecast.seeks == 0
        assert forecast.io_ms == 0.0

    def test_clustered_matches_fetch_cost(self):
        model = DiskCostModel(page_size=10)
        forecast = model.predict_fetch(25)
        assert forecast.points == 25
        assert forecast.pages == 3  # ceil(25 / 10)
        assert forecast.seeks == 1  # one contiguous run
        assert forecast.io_ms == pytest.approx(model.fetch_cost_ms(1, 3))

    def test_unclustered_without_hint_is_pessimistic(self):
        model = DiskCostModel(page_size=10, clustered=False)
        forecast = model.predict_fetch(25)
        assert forecast.pages == 25  # one page per row
        assert forecast.seeks == 25

    def test_unclustered_yao_estimate_bounded_by_heap(self):
        model = DiskCostModel(page_size=10, clustered=False)
        forecast = model.predict_fetch(500, heap_pages=40)
        assert 1 <= forecast.pages <= 40
        assert 1 <= forecast.seeks <= forecast.pages
        # 500 uniform draws over 40 pages hit nearly every page
        assert forecast.pages == 40

    def test_unclustered_few_rows_touch_few_pages(self):
        model = DiskCostModel(page_size=10, clustered=False)
        forecast = model.predict_fetch(3, heap_pages=1000)
        assert forecast.points == 3
        assert forecast.pages <= 3  # Yao: at most one page per row

    def test_as_dict_is_json_ready(self):
        import json

        record = DiskCostModel().predict_fetch(100).as_dict()
        assert set(record) == {"points", "pages", "seeks", "io_ms"}
        json.dumps(record)


class TestUnclusteredAccounting:
    """clustered=False charges page runs from physical row ids."""

    def test_scattered_rows_pay_per_run(self):
        from repro.geometry.constraints import Constraints
        from repro.storage.table import DiskTable

        rng = np.random.default_rng(0)
        data = rng.random((200, 2))
        model = DiskCostModel(page_size=10, clustered=False)
        table = DiskTable(data, cost_model=model)
        box = Constraints(np.zeros(2), np.ones(2)).region()
        table.range_query(box)  # full region: every page, one run
        stats = table.stats
        assert stats.pages_read == 20  # 200 rows / 10 per page
        assert stats.seeks == 1  # rows are contiguous -> one run
        assert stats.simulated_io_ms == pytest.approx(
            model.fetch_cost_ms(1, 20)
        )

    def test_selective_query_charges_runs_not_rows(self):
        from repro.geometry.constraints import Constraints
        from repro.storage.table import DiskTable

        rng = np.random.default_rng(1)
        data = rng.random((400, 2))
        model = DiskCostModel(page_size=16, clustered=False)
        table = DiskTable(data, cost_model=model)
        box = Constraints(np.zeros(2), np.full(2, 0.3)).region()
        result = table.range_query(box)
        rows = result.rows_fetched
        assert 0 < rows < 400
        stats = table.stats
        # scattered hits: pages <= rows, runs <= pages, all charged
        assert stats.pages_read <= rows
        assert 1 <= stats.seeks <= stats.pages_read
        assert stats.simulated_io_ms == pytest.approx(
            model.fetch_cost_ms(stats.seeks, stats.pages_read)
        )


class TestPageRuns:
    def test_empty(self):
        assert page_runs(np.array([], dtype=np.int64), 10) == (0, 0)

    def test_single_page(self):
        assert page_runs(np.array([0, 1, 2]), 10) == (1, 1)

    def test_contiguous_pages_one_run(self):
        rows = np.array([5, 15, 25])  # pages 0, 1, 2
        assert page_runs(rows, 10) == (3, 1)

    def test_gap_starts_new_run(self):
        rows = np.array([5, 95])  # pages 0 and 9
        assert page_runs(rows, 10) == (2, 2)

    def test_duplicate_rows_counted_once(self):
        rows = np.array([3, 3, 3])
        assert page_runs(rows, 10) == (1, 1)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1))
    def test_runs_never_exceed_pages(self, rows):
        n_pages, n_runs = page_runs(np.array(rows), 16)
        assert 1 <= n_runs <= n_pages
        assert n_pages == len({r // 16 for r in rows})


class TestIOStats:
    def test_reset(self):
        stats = IOStats(points_read=5, seeks=2, simulated_io_ms=1.5)
        stats.reset()
        assert stats.points_read == 0
        assert stats.simulated_io_ms == 0.0

    def test_snapshot_is_independent(self):
        stats = IOStats(points_read=5)
        snap = stats.snapshot()
        stats.points_read = 99
        assert snap.points_read == 5

    def test_delta_since(self):
        stats = IOStats(points_read=10, pages_read=3, simulated_io_ms=2.0)
        snap = stats.snapshot()
        stats.points_read += 7
        stats.simulated_io_ms += 1.0
        delta = stats.delta_since(snap)
        assert delta.points_read == 7
        assert delta.pages_read == 0
        assert delta.simulated_io_ms == pytest.approx(1.0)

    def test_add(self):
        a = IOStats(points_read=1, range_queries=2)
        b = IOStats(points_read=3, empty_queries=1)
        a.add(b)
        assert a.points_read == 4
        assert a.range_queries == 2
        assert a.empty_queries == 1
