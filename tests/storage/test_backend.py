"""Tests for the storage-backend protocol and its stacking decorators."""

import numpy as np
import pytest

from repro.data.generator import independent
from repro.geometry.box import Box
from repro.geometry.constraints import Constraints
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.resilience import CircuitBreaker, Resilience, RetryPolicy
from repro.resilience.errors import CircuitOpenError, RetriesExhausted
from repro.storage.backend import (
    InstrumentedBackend,
    ResilientBackend,
    StorageBackend,
    build_backend,
    unwrap,
)
from repro.storage.faults import FaultInjector, FaultProfile, FaultyDiskTable
from repro.storage.table import DiskTable


@pytest.fixture
def data():
    return independent(300, 2, seed=3)


@pytest.fixture
def table(data):
    return DiskTable(data)


BOX = Constraints([0.1, 0.1], [0.8, 0.8]).region()


class TestProtocol:
    def test_every_layer_satisfies_the_protocol(self, table):
        injector = FaultInjector(FaultProfile(), seed=0)
        faulty = FaultyDiskTable(table, injector)
        resilient = ResilientBackend(faulty, Resilience())
        instrumented = InstrumentedBackend(resilient)
        for layer in (table, faulty, resilient, instrumented):
            assert isinstance(layer, StorageBackend)

    def test_decorators_delegate_attributes(self, table):
        stack = InstrumentedBackend(ResilientBackend(table, Resilience()))
        assert stack.ndim == table.ndim
        assert stack.stats is table.stats
        assert stack.estimate_count(0, 0.0, 1.0) == table.estimate_count(
            0, 0.0, 1.0
        )

    def test_unwrap_reaches_the_base_table(self, table):
        stack = InstrumentedBackend(ResilientBackend(table, Resilience()))
        assert unwrap(stack) is table


class TestBuildBackend:
    def test_bare_table_passes_through(self, table):
        assert build_backend(table) is table

    def test_resilience_wraps_once(self, table):
        backend = build_backend(table, resilience=Resilience())
        assert isinstance(backend, ResilientBackend)
        assert backend.inner is table

    def test_obs_stacks_outermost(self, table):
        obs = Observability(metrics=MetricsRegistry(), tracer=Tracer())
        backend = build_backend(table, resilience=Resilience(), obs=obs)
        assert isinstance(backend, InstrumentedBackend)
        assert isinstance(backend.inner, ResilientBackend)
        assert backend.inner.inner is table

    def test_disabled_obs_adds_no_layer(self, table):
        from repro.obs import NULL_OBS

        backend = build_backend(table, resilience=None, obs=NULL_OBS)
        assert backend is table


class TestResilientRangeQuery:
    def test_clean_call_matches_raw_table(self, data, table):
        backend = ResilientBackend(table, Resilience())
        raw = DiskTable(data).range_query(BOX)
        result = backend.range_query(BOX)
        assert np.array_equal(result.points, raw.points)
        assert np.array_equal(result.rowids, raw.rowids)

    def test_transient_fault_retried_to_success(self, data):
        injector = FaultInjector(FaultProfile(transient_io=0.3), seed=7)
        faulty = FaultyDiskTable(DiskTable(data), injector)
        res = Resilience(policy=RetryPolicy(max_attempts=6))
        backend = ResilientBackend(faulty, res)
        state = res.new_state()
        # Enough calls that some hit faults; all must come back clean.
        for _ in range(12):
            result = backend.range_query(BOX, retry_state=state)
            assert np.isfinite(result.points).all()
        assert state.retries > 0

    def test_truncation_detected_and_retried(self, data):
        injector = FaultInjector(FaultProfile(truncate=0.5), seed=11)
        faulty = FaultyDiskTable(DiskTable(data), injector)
        res = Resilience()
        backend = ResilientBackend(faulty, res)
        clean = DiskTable(data).range_query(BOX)
        for _ in range(8):
            result = backend.range_query(BOX, retry_state=res.new_state())
            # validation forces a refetch: points and rowids always agree
            assert len(result.points) == len(result.rowids)
            assert len(result.points) == len(clean.points)

    def test_internal_state_used_when_none_passed(self, data):
        injector = FaultInjector(FaultProfile(transient_io=0.4), seed=5)
        faulty = FaultyDiskTable(DiskTable(data), injector)
        backend = ResilientBackend(faulty, Resilience())
        for _ in range(10):
            result = backend.range_query(BOX)
            assert np.isfinite(result.points).all()

    def test_exhausted_retries_raise(self, data):
        injector = FaultInjector(FaultProfile(transient_io=1.0), seed=1)
        faulty = FaultyDiskTable(DiskTable(data), injector)
        res = Resilience(policy=RetryPolicy(max_attempts=2))
        backend = ResilientBackend(faulty, res)
        with pytest.raises(RetriesExhausted):
            backend.range_query(BOX, retry_state=res.new_state())


class TestBreakerIntegration:
    def make_stack(self, data, threshold=2):
        injector = FaultInjector(FaultProfile(), seed=0)
        faulty = FaultyDiskTable(DiskTable(data), injector)
        res = Resilience(
            policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=threshold, cooldown_calls=50),
        )
        return ResilientBackend(faulty, res), injector, res.breaker

    def test_failures_open_the_breaker(self, data):
        backend, injector, breaker = self.make_stack(data)
        injector.force_outage(10)
        for _ in range(2):
            with pytest.raises(RetriesExhausted):
                backend.range_query(BOX)
        assert breaker.state == "open"

    def test_open_breaker_rejects_before_storage(self, data):
        backend, injector, breaker = self.make_stack(data)
        injector.force_outage(10)
        for _ in range(2):
            with pytest.raises(RetriesExhausted):
                backend.range_query(BOX)
        calls_before = injector.calls
        with pytest.raises(CircuitOpenError):
            backend.range_query(BOX)
        assert injector.calls == calls_before  # rejected before any I/O

    def test_fetch_boxes_is_per_box_protected(self, data):
        backend, injector, breaker = self.make_stack(data, threshold=5)
        halves = [
            Constraints([0.0, 0.0], [0.5, 1.0]).region(),
            Constraints([0.5, 0.0], [1.0, 1.0]).region(),
        ]
        result = backend.fetch_boxes(halves)
        raw = DiskTable(data).fetch_boxes(halves)
        assert np.array_equal(
            np.sort(result.rowids), np.sort(raw.rowids)
        )
        assert result.rows_fetched == raw.rows_fetched


class TestInstrumentedBackend:
    def test_counts_outcomes(self, data):
        obs = Observability(metrics=MetricsRegistry(), tracer=Tracer())
        backend = InstrumentedBackend(DiskTable(data), obs)
        backend.range_query(BOX)
        assert (
            obs.metrics.counter_value(
                "backend_range_queries_total", outcome="ok"
            )
            == 1.0
        )

    def test_error_outcome_labeled(self, data):
        obs = Observability(metrics=MetricsRegistry(), tracer=Tracer())
        injector = FaultInjector(FaultProfile(transient_io=1.0), seed=2)
        faulty = FaultyDiskTable(DiskTable(data), injector)
        backend = InstrumentedBackend(faulty, obs)
        with pytest.raises(IOError):
            backend.range_query(BOX)
        assert (
            obs.metrics.counter_value(
                "backend_range_queries_total", outcome="TransientStorageError"
            )
            == 1.0
        )
