"""Tests for :mod:`repro.storage.table`."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.box import Box
from repro.geometry.interval import Interval
from repro.storage.costmodel import DiskCostModel
from repro.storage.table import DiskTable


@pytest.fixture()
def table():
    rng = np.random.default_rng(42)
    data = rng.uniform(0, 1, size=(2000, 3))
    return DiskTable(data, cost_model=DiskCostModel(page_size=32)), data


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DiskTable(np.zeros(5))

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            DiskTable(np.zeros((1, 2)), plan="hash")

    def test_nonfinite_data_rejected(self):
        with pytest.raises(ValueError):
            DiskTable(np.array([[0.0, np.nan]]))
        with pytest.raises(ValueError):
            DiskTable(np.array([[np.inf, 1.0]]))

    def test_nonfinite_append_rejected(self):
        table = DiskTable(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            table.append(np.array([[np.nan, 0.0]]))

    def test_metadata(self, table):
        t, data = table
        assert t.n == 2000
        assert t.ndim == 3
        assert t.n_pages == math.ceil(2000 / 32)
        np.testing.assert_array_equal(t.domain_lo, data.min(axis=0))
        np.testing.assert_array_equal(t.domain_hi, data.max(axis=0))

    def test_empty_table(self):
        t = DiskTable(np.empty((0, 2)))
        result = t.range_query(Box.closed([0, 0], [1, 1]))
        assert len(result) == 0
        assert t.stats.empty_queries == 1

    def test_data_view_is_readonly(self, table):
        t, _ = table
        view = t.data_view()
        with pytest.raises(ValueError):
            view[0, 0] = 99.0


class TestRangeQueries:
    def test_matches_numpy_filter(self, table):
        t, data = table
        box = Box.closed([0.2, 0.3, 0.1], [0.6, 0.8, 0.9])
        result = t.range_query(box)
        expected = np.flatnonzero(box.mask(data))
        assert sorted(result.rowids) == sorted(expected)
        np.testing.assert_allclose(
            result.points[np.argsort(result.rowids)], data[np.sort(result.rowids)]
        )

    def test_bitmap_plan_matches(self, table):
        _, data = table
        t = DiskTable(data, plan="bitmap", cost_model=DiskCostModel(page_size=32))
        box = Box.closed([0.2, 0.3, 0.1], [0.6, 0.8, 0.9])
        result = t.range_query(box)
        expected = np.flatnonzero(box.mask(data))
        assert sorted(result.rowids) == sorted(expected)

    def test_bitmap_reads_exactly_matching_rows(self, table):
        _, data = table
        t = DiskTable(data, plan="bitmap", cost_model=DiskCostModel(page_size=32))
        box = Box.closed([0.2, 0.3, 0.1], [0.6, 0.8, 0.9])
        result = t.range_query(box)
        assert result.rows_fetched == len(result)

    def test_best_index_may_overfetch_but_never_underfetches(self, table):
        t, data = table
        box = Box.closed([0.45, 0.0, 0.0], [0.55, 1.0, 1.0])
        result = t.range_query(box)
        assert result.rows_fetched >= len(result)
        assert len(result) == int(box.mask(data).sum())

    def test_open_faces_respected(self):
        data = np.array([[0.5, 0.5], [0.5, 0.7], [0.6, 0.5]])
        t = DiskTable(data)
        box = Box(
            [Interval(0.5, 1.0, lo_open=True), Interval.closed(0.0, 1.0)]
        )
        result = t.range_query(box)
        assert sorted(result.rowids) == [2]

    def test_empty_query_costs_no_io(self, table):
        """Paper Section 7.3.2: B-trees detect empty queries without seeks."""
        t, _ = table
        before = t.stats.snapshot()
        result = t.range_query(Box.closed([2.0, 2.0, 2.0], [3.0, 3.0, 3.0]))
        delta = t.stats.delta_since(before)
        assert len(result) == 0
        assert delta.range_queries == 1
        assert delta.empty_queries == 1
        assert delta.seeks == 0
        assert delta.pages_read == 0
        assert delta.simulated_io_ms == 0.0

    def test_unsatisfiable_box_is_empty_query(self, table):
        t, _ = table
        box = Box([Interval.closed(0.5, 0.4)] + [Interval.closed(0, 1)] * 2)
        result = t.range_query(box)
        assert len(result) == 0
        assert t.stats.empty_queries >= 1

    def test_dimension_mismatch(self, table):
        t, _ = table
        with pytest.raises(ValueError):
            t.range_query(Box.closed([0, 0], [1, 1]))

    @given(
        data=arrays(np.float64, (50, 2), elements=st.floats(0, 1)),
        bounds=st.tuples(
            st.floats(0, 1), st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_plans_agree(self, data, bounds):
        lo = [min(bounds[0], bounds[1]), min(bounds[2], bounds[3])]
        hi = [max(bounds[0], bounds[1]), max(bounds[2], bounds[3])]
        box = Box.closed(lo, hi)
        best = DiskTable(data, plan="best_index").range_query(box)
        bitmap = DiskTable(data, plan="bitmap").range_query(box)
        seqscan = DiskTable(data, plan="seqscan").range_query(box)
        assert sorted(best.rowids) == sorted(bitmap.rowids)
        assert sorted(best.rowids) == sorted(seqscan.rowids)
        expected = np.flatnonzero(box.mask(data))
        assert sorted(best.rowids) == sorted(expected)

    def test_seqscan_reads_everything(self):
        data = np.random.default_rng(5).uniform(0, 1, size=(500, 2))
        table = DiskTable(data, plan="seqscan")
        result = table.range_query(Box.closed([0.4, 0.4], [0.6, 0.6]))
        assert result.rows_fetched == 500
        assert table.stats.points_read == 500

    def test_index_baseline_beats_seqscan_baseline(self):
        """Paper Section 7: 'a baseline using sequential scan ... was
        consistently slower than the baseline using the indexes'."""
        rng = np.random.default_rng(6)
        data = rng.uniform(0, 1, size=(20_000, 3))
        indexed = DiskTable(data)
        scanning = DiskTable(data, plan="seqscan")
        box = Box.closed([0.3, 0.3, 0.3], [0.6, 0.6, 0.6])
        indexed.range_query(box)
        scanning.range_query(box)
        assert indexed.stats.simulated_io_ms < scanning.stats.simulated_io_ms


class TestAccounting:
    def test_points_read_counts_candidates(self, table):
        t, _ = table
        before = t.stats.snapshot()
        result = t.range_query(Box.closed([0.4, 0.0, 0.0], [0.6, 1.0, 1.0]))
        delta = t.stats.delta_since(before)
        assert delta.points_read == result.rows_fetched
        assert delta.pages_read >= 1
        assert delta.seeks >= 1
        assert delta.simulated_io_ms > 0

    def test_fetch_boxes_accumulates(self, table):
        t, data = table
        boxes = [
            Box.closed([0.0, 0.0, 0.0], [0.3, 1.0, 1.0]),
            Box(
                [
                    Interval(0.3, 0.6, lo_open=True),
                    Interval.closed(0.0, 1.0),
                    Interval.closed(0.0, 1.0),
                ]
            ),
        ]
        before = t.stats.snapshot()
        result = t.fetch_boxes(boxes)
        delta = t.stats.delta_since(before)
        assert delta.range_queries == 2
        # disjoint boxes: no duplicate rowids in the union
        assert len(set(result.rowids)) == len(result.rowids)
        expected = np.flatnonzero(data[:, 0] <= 0.6)
        assert sorted(result.rowids) == sorted(expected)

    def test_fetch_boxes_empty(self, table):
        t, _ = table
        result = t.fetch_boxes([])
        assert len(result) == 0

    def test_full_scan(self, table):
        t, data = table
        before = t.stats.snapshot()
        result = t.full_scan()
        delta = t.stats.delta_since(before)
        assert len(result) == len(data)
        assert delta.full_scans == 1
        assert delta.seeks == 1
        assert delta.pages_read == t.n_pages

    def test_unclustered_model_charges_physical_runs(self):
        """With clustered=False, scattered candidate rows cost extra seeks."""
        rng = np.random.default_rng(3)
        data = rng.uniform(0, 1, size=(2000, 2))
        clustered = DiskTable(
            data, cost_model=DiskCostModel(page_size=16, clustered=True)
        )
        physical = DiskTable(
            data, cost_model=DiskCostModel(page_size=16, clustered=False)
        )
        box = Box.closed([0.4, 0.0], [0.6, 1.0])
        clustered.range_query(box)
        physical.range_query(box)
        assert physical.stats.seeks > clustered.stats.seeks
        assert physical.stats.simulated_io_ms > clustered.stats.simulated_io_ms

    def test_small_query_cheaper_than_large(self, table):
        t, _ = table
        before = t.stats.snapshot()
        t.range_query(Box.closed([0.0, 0.0, 0.0], [0.05, 1.0, 1.0]))
        small = t.stats.delta_since(before).simulated_io_ms
        before = t.stats.snapshot()
        t.range_query(Box.closed([0.0, 0.0, 0.0], [0.9, 1.0, 1.0]))
        large = t.stats.delta_since(before).simulated_io_ms
        assert small < large
