"""Tests for the retry policy, state budget, and validation helpers."""

import numpy as np
import pytest

from repro.resilience import (
    CorruptResultError,
    RetriesExhausted,
    RetryPolicy,
    RetryState,
    call_with_retry,
    validate_range_result,
)
from repro.storage.faults import TransientStorageError
from repro.storage.table import RangeResult


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_ms=1.0, multiplier=2.0, max_delay_ms=8.0, jitter=0.0
        )
        delays = [policy.backoff_ms(a) for a in range(1, 7)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_ms=10.0, jitter=0.5)
        first = policy.backoff_ms(2, token=7)
        second = policy.backoff_ms(2, token=7)
        assert first == second  # same (token, attempt) -> same delay
        assert policy.backoff_ms(2, token=8) != first  # spread across tokens
        raw = 20.0
        assert raw * 0.75 <= first <= raw * 1.25

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=-1.0)


class TestCallWithRetry:
    def flaky(self, fail_times):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise TransientStorageError("boom")
            return "ok"

        return fn, calls

    def test_succeeds_after_transient_failures(self):
        fn, calls = self.flaky(2)
        state = RetryState(RetryPolicy(max_attempts=4))
        assert call_with_retry(fn, state) == "ok"
        assert calls["n"] == 3
        assert state.retries == 2
        assert state.spent_ms > 0

    def test_exhausts_attempts(self):
        fn, _ = self.flaky(10)
        state = RetryState(RetryPolicy(max_attempts=3))
        with pytest.raises(RetriesExhausted) as exc_info:
            call_with_retry(fn, state)
        assert isinstance(exc_info.value.__cause__, TransientStorageError)

    def test_deadline_budget_stops_retrying(self):
        fn, _ = self.flaky(10)
        state = RetryState(
            RetryPolicy(max_attempts=100, base_delay_ms=10.0, deadline_ms=25.0)
        )
        with pytest.raises(RetriesExhausted, match="deadline"):
            call_with_retry(fn, state)
        assert state.spent_ms <= 25.0

    def test_budget_shared_across_operations(self):
        state = RetryState(
            RetryPolicy(
                max_attempts=10, base_delay_ms=10.0, jitter=0.0, deadline_ms=45.0
            )
        )
        fn1, _ = self.flaky(2)
        call_with_retry(fn1, state)  # spends 10 + 20 = 30ms
        fn2, _ = self.flaky(2)
        with pytest.raises(RetriesExhausted, match="deadline"):
            call_with_retry(fn2, state)  # 10ms fits, the next 20ms does not

    def test_non_retryable_propagates(self):
        def fn():
            raise KeyError("not storage")

        with pytest.raises(KeyError):
            call_with_retry(fn, RetryState(RetryPolicy()))

    def test_retry_counters_recorded(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        fn, _ = self.flaky(2)
        call_with_retry(fn, RetryState(RetryPolicy()), metrics=metrics, op="fetch")
        assert metrics.counter_value("storage_retries_total", op="fetch") == 2


class TestValidateRangeResult:
    def make(self, points, rowids=None):
        points = np.asarray(points, dtype=float)
        if rowids is None:
            rowids = np.arange(len(points))
        return RangeResult(
            points=points, rowids=np.asarray(rowids), rows_fetched=len(points)
        )

    def test_clean_result_passes(self):
        validate_range_result(self.make([[1.0, 2.0], [3.0, 4.0]]))

    def test_truncation_detected(self):
        result = self.make([[1.0, 2.0]], rowids=[0, 1, 2])
        with pytest.raises(CorruptResultError):
            validate_range_result(result)

    def test_nan_detected(self):
        with pytest.raises(CorruptResultError):
            validate_range_result(self.make([[1.0, float("nan")]]))

    def test_corrupt_is_retryable(self):
        from repro.resilience import RETRYABLE

        assert issubclass(CorruptResultError, RETRYABLE)
