"""Tests for the count-based circuit breaker."""

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import CircuitBreaker, CircuitOpenError


def trip(breaker):
    """Drive the breaker to open with consecutive failures."""
    for _ in range(breaker.failure_threshold):
        breaker.allow()
        breaker.record_failure()
    assert breaker.state == "open"


class TestStateMachine:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.allow()
        breaker.record_failure()
        breaker.allow()
        breaker.record_success()
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak broken by the success

    def test_open_rejects_until_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=3)
        trip(breaker)
        for _ in range(2):
            with pytest.raises(CircuitOpenError):
                breaker.allow()
        breaker.allow()  # third rejection becomes the half-open probe
        assert breaker.state == "half_open"

    def test_probe_successes_close(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_calls=1, probe_successes=2
        )
        trip(breaker)
        breaker.allow()
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "half_open"
        breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=1)
        trip(breaker)
        breaker.allow()
        assert breaker.state == "half_open"
        breaker.record_failure()
        assert breaker.state == "open"

    def test_transitions_recorded(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_calls=1, probe_successes=1
        )
        trip(breaker)
        breaker.allow()
        breaker.record_success()
        states = [(t.from_state, t.to_state) for t in breaker.transitions]
        assert states == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_calls=0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_successes=0)


class TestBreakerMetrics:
    def test_transitions_and_gauge_mirrored(self):
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_calls=1, probe_successes=1,
            metrics=metrics,
        )
        trip(breaker)
        assert (
            metrics.counter_value(
                "breaker_transitions_total",
                breaker="disk",
                from_state="closed",
                to_state="open",
            )
            == 1
        )
        breaker.allow()
        breaker.record_success()
        assert (
            metrics.counter_value(
                "breaker_transitions_total",
                breaker="disk",
                from_state="half_open",
                to_state="closed",
            )
            == 1
        )
