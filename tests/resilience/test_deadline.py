"""Tests for per-request deadline budgets and their propagation through
retry backoff, the storage backend, and the degradation ladder."""

import numpy as np
import pytest

from repro.core.cbcs import RUNG_STALE, CBCS
from repro.data.generator import independent
from repro.geometry.constraints import Constraints
from repro.resilience import (
    DEGRADABLE,
    RETRYABLE,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    RetryState,
    call_with_retry,
)
from repro.skyline.sfs import sfs_skyline
from repro.storage.faults import (
    FaultInjector,
    FaultProfile,
    FaultyDiskTable,
    TransientStorageError,
)
from repro.storage.table import DiskTable


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def reference(data, constraints):
    region = data[constraints.satisfied_mask(data)]
    return region[sfs_skyline(region)] if len(region) else region


def same_multiset(a, b):
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        return False
    if len(a) == 0:
        return True
    return np.array_equal(a[np.lexsort(a.T[::-1])], b[np.lexsort(b.T[::-1])])


class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-5.0)

    def test_normalize(self):
        assert Deadline.normalize(None) is None
        d = Deadline(100.0)
        assert Deadline.normalize(d) is d
        fresh = Deadline.normalize(250)
        assert isinstance(fresh, Deadline)
        assert fresh.budget_ms == 250.0
        with pytest.raises(TypeError):
            Deadline.normalize("soon")

    def test_wall_clock_elapse(self):
        clock = FakeClock()
        d = Deadline(100.0, clock=clock)
        assert not d.expired
        clock.t = 0.05
        assert d.elapsed_ms == pytest.approx(50.0)
        assert d.remaining_ms == pytest.approx(50.0)
        clock.t = 0.11
        assert d.expired
        assert d.remaining_ms == 0.0

    def test_charged_simulated_time_counts(self):
        d = Deadline(100.0, clock=FakeClock())
        d.charge(40.0)
        d.charge(70.0)
        assert d.charged_ms == pytest.approx(110.0)
        assert d.expired  # simulated charges alone can expire the budget

    def test_check_raises_typed_with_detail(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        d.check("ingress")  # within budget: no-op
        clock.t = 1.0
        with pytest.raises(DeadlineExceeded) as excinfo:
            d.check("fetch")
        assert "fetch" in str(excinfo.value)
        assert "10.0" in str(excinfo.value)

    def test_not_retryable_not_degradable(self):
        """A deadline expiry must stop work, so the generic recovery
        machinery may never swallow it."""
        assert not issubclass(DeadlineExceeded, RETRYABLE)
        assert not issubclass(DeadlineExceeded, DEGRADABLE)


class TestDeadlineMidRetry:
    def flaky(self, fail_times):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise TransientStorageError("boom")
            return "ok"

        return fn, calls

    def test_backoff_charges_expire_the_deadline(self):
        """Each retry backoff charges simulated ms; once they exhaust the
        budget the loop stops with DeadlineExceeded instead of burning
        every remaining attempt."""
        fn, calls = self.flaky(10)
        deadline = Deadline(25.0, clock=FakeClock())
        state = RetryState(
            RetryPolicy(
                max_attempts=20, base_delay_ms=10.0, multiplier=2.0, jitter=0.0
            ),
            deadline=deadline,
        )
        with pytest.raises(DeadlineExceeded):
            call_with_retry(fn, state)
        assert deadline.expired
        # 10ms + 20ms of backoff exceed 25ms: aborted well before attempt 20.
        assert calls["n"] <= 3

    def test_untouched_budget_retries_to_success(self):
        fn, calls = self.flaky(2)
        state = RetryState(
            RetryPolicy(max_attempts=5, base_delay_ms=1.0, jitter=0.0),
            deadline=Deadline(1000.0, clock=FakeClock()),
        )
        assert call_with_retry(fn, state) == "ok"
        assert calls["n"] == 3

    def test_no_deadline_means_no_limit(self):
        fn, _ = self.flaky(3)
        state = RetryState(RetryPolicy(max_attempts=5, base_delay_ms=1.0))
        assert state.deadline is None
        assert call_with_retry(fn, state) == "ok"


class TestDeadlineThroughEngine:
    """Deadline x degradation-ladder semantics: an expired budget yields a
    stale-*flagged* best-so-far answer when the cache has one, or a typed
    DeadlineExceeded -- never a partial answer without a flag, never a
    silent hang."""

    @pytest.fixture
    def data(self):
        return independent(400, 2, seed=1)

    def make_engine(self, data, profile=None, seed=0):
        if profile is None:
            return CBCS(DiskTable(data), resilience=True)
        injector = FaultInjector(profile, seed=seed)
        return CBCS(
            FaultyDiskTable(DiskTable(data), injector), resilience=True
        )

    def test_generous_deadline_is_invisible(self, data):
        engine = self.make_engine(data)
        c = Constraints([0.1, 0.1], [0.8, 0.8])
        outcome = engine.query(c, deadline=1e9)
        assert outcome.degraded is None and not outcome.stale
        assert same_multiset(outcome.skyline, reference(data, c))

    def test_expired_deadline_with_cold_cache_raises_typed(self, data):
        engine = self.make_engine(data)
        dead = Deadline(1e-6, clock=FakeClock())
        dead.charge(1.0)  # already over budget at ingress
        with pytest.raises(DeadlineExceeded):
            engine.query(Constraints([0.1, 0.1], [0.8, 0.8]), deadline=dead)

    def test_exact_cache_hit_beats_an_expired_deadline(self, data):
        """Completed work is returned even past the deadline: an exact
        cache hit needs no storage, so the (better-than-stale) exact
        answer comes back unflagged."""
        engine = self.make_engine(data)
        c = Constraints([0.1, 0.1], [0.8, 0.8])
        engine.query(c)
        dead = Deadline(1e-6, clock=FakeClock())
        dead.charge(1.0)
        outcome = engine.query(c, deadline=dead)
        assert outcome.degraded is None and not outcome.stale
        assert same_multiset(outcome.skyline, reference(data, c))

    def test_expired_deadline_serves_stale_flagged_from_cache(self, data):
        engine = self.make_engine(data)
        engine.query(Constraints([0.1, 0.1], [0.8, 0.8]))  # warm overlap
        # A wider region needs a storage fetch the expired budget forbids;
        # the ladder falls through to the overlapping cached item instead.
        wider = Constraints([0.05, 0.05], [0.9, 0.9])
        dead = Deadline(1e-6, clock=FakeClock())
        dead.charge(1.0)
        outcome = engine.query(wider, deadline=dead)
        assert outcome.degraded == RUNG_STALE
        assert outcome.stale
        # Best-so-far is the overlapping cached answer, clearly flagged --
        # a subset of the data, never fabricated points.
        region = data[wider.satisfied_mask(data)]
        for point in np.asarray(outcome.skyline):
            assert any(np.allclose(point, row) for row in region)

    def test_mid_query_expiry_under_faults_never_partial_unflagged(self, data):
        """Seeded-fault variant: a tight budget expires mid-retry/mid-ladder.
        Whatever comes back is either exact, stale-flagged, or a typed
        DeadlineExceeded -- never an unflagged partial answer."""
        engine = self.make_engine(
            data,
            FaultProfile(transient_io=0.5, latency=0.3, latency_ms=40.0),
            seed=7,
        )
        outcomes = {"exact": 0, "stale": 0, "typed": 0}
        for i in range(12):
            c = Constraints([0.04 * i, 0.05], [0.04 * i + 0.5, 0.9])
            try:
                # The budget covers a clean first fetch but not much
                # retrying: some queries finish, some expire mid-ladder.
                outcome = engine.query(c, deadline=30.0)
            except DeadlineExceeded:
                outcomes["typed"] += 1
                continue
            if outcome.stale:
                outcomes["stale"] += 1
            else:
                assert outcome.degraded in (None, "ampr", "bounding")
                assert same_multiset(outcome.skyline, reference(data, c))
                outcomes["exact"] += 1
        # The schedule is seeded, so the mix is reproducible: both the
        # success path and at least one deadline-hit path must occur.
        assert outcomes["exact"] > 0
        assert outcomes["typed"] + outcomes["stale"] > 0

    def test_deadline_metrics_exported(self, data):
        from repro.obs import MetricsRegistry, Observability, Tracer

        obs = Observability(metrics=MetricsRegistry(), tracer=Tracer())
        engine = CBCS(DiskTable(data), obs=obs, resilience=True)
        engine.query(Constraints([0.1, 0.1], [0.8, 0.8]))
        dead = Deadline(1e-6, clock=FakeClock())
        dead.charge(1.0)
        outcome = engine.query(
            Constraints([0.05, 0.05], [0.9, 0.9]), deadline=dead
        )
        assert outcome.stale
        assert (
            obs.metrics.counter_value(
                "query_deadline_exceeded_total", method=engine.name
            )
            >= 1
        )
