"""Tests for table/cache persistence and the named-column API."""

import numpy as np
import pytest

from repro.core.cache import SkylineCache
from repro.core.cbcs import CBCS
from repro.data.generator import generate
from repro.geometry.constraints import Constraints
from repro.storage.costmodel import DiskCostModel
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

from tests.core.conftest import assert_same_point_set, constrained_skyline_oracle


class TestNamedColumns:
    @pytest.fixture()
    def table(self):
        data = generate("independent", 200, 3, seed=1)
        return DiskTable(data, columns=("price", "distance", "rating"))

    def test_constraints_by_name(self, table):
        c = table.constraints(price=(0.2, 0.8), rating=(None, 0.5))
        assert c.lo[0] == 0.2 and c.hi[0] == 0.8
        assert c.hi[2] == 0.5
        # unspecified dims and open sides fall back to the domain
        assert c.lo[1] == table.domain_lo[1]
        assert c.lo[2] == table.domain_lo[2]

    def test_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.constraints(colour=(0, 1))

    def test_requires_names(self):
        table = DiskTable(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            table.constraints(x=(0, 1))

    def test_name_count_validated(self):
        with pytest.raises(ValueError):
            DiskTable(np.zeros((1, 2)), columns=("only_one",))
        with pytest.raises(ValueError):
            DiskTable(np.zeros((1, 2)), columns=("dup", "dup"))

    def test_named_query_roundtrip(self, table):
        c = table.constraints(price=(0.1, 0.9))
        result = table.range_query(c.region())
        data = table.data_view()
        expected = np.flatnonzero(c.satisfied_mask(data))
        assert sorted(result.rowids) == sorted(expected)


class TestTablePersistence:
    def test_roundtrip_preserves_queries(self, tmp_path):
        data = generate("independent", 500, 3, seed=2)
        table = DiskTable(
            data,
            cost_model=DiskCostModel(page_size=64, seek_ms=2.0),
            columns=("a", "b", "c"),
            buffer_pages=32,
        )
        table.delete([1, 2, 3])
        path = tmp_path / "table.npz"
        table.save(path)
        loaded = DiskTable.load(path)

        assert loaded.columns == ("a", "b", "c")
        assert loaded.cost_model.page_size == 64
        assert loaded.cost_model.seek_ms == 2.0
        assert loaded.buffer is not None
        assert loaded.live_count == 497
        box = Constraints([0.1] * 3, [0.9] * 3).region()
        a = table.range_query(box)
        b = loaded.range_query(box)
        assert sorted(a.rowids) == sorted(b.rowids)

    def test_roundtrip_defaults(self, tmp_path):
        table = DiskTable(generate("independent", 50, 2, seed=3))
        path = tmp_path / "t.npz"
        table.save(path)
        loaded = DiskTable.load(path)
        assert loaded.columns is None
        assert loaded.buffer is None
        assert loaded.n == 50


class TestCachePersistence:
    def test_roundtrip(self, tmp_path):
        data = generate("independent", 800, 2, seed=4)
        engine = CBCS(DiskTable(data))
        gen = WorkloadGenerator(data, seed=5)
        for c in gen.independent_queries(6):
            engine.query(c)
        path = tmp_path / "cache.npz"
        engine.cache.save(path)

        restored = SkylineCache.load(path)
        assert len(restored) == len(engine.cache)
        for item in engine.cache:
            twin = restored.exact_match(item.constraints)
            assert twin is not None
            np.testing.assert_array_equal(
                np.sort(twin.skyline, axis=0), np.sort(item.skyline, axis=0)
            )
            assert twin.use_count == item.use_count

    def test_restored_cache_serves_queries(self, tmp_path):
        data = generate("independent", 800, 2, seed=6)
        engine = CBCS(DiskTable(data))
        c = Constraints([0.2, 0.2], [0.8, 0.8])
        engine.query(c)
        path = tmp_path / "cache.npz"
        engine.cache.save(path)

        warm_engine = CBCS(DiskTable(data), cache=SkylineCache.load(path))
        refined = Constraints([0.2, 0.2], [0.8, 0.85])
        out = warm_engine.query(refined)
        assert out.cache_hit
        assert_same_point_set(
            out.skyline, constrained_skyline_oracle(data, refined)
        )

    def test_empty_cache_roundtrip(self, tmp_path):
        cache = SkylineCache(capacity=7, policy="lcu")
        path = tmp_path / "empty.npz"
        cache.save(path)
        restored = SkylineCache.load(path)
        assert len(restored) == 0
        assert restored.capacity == 7
        assert restored.policy == "lcu"
