"""Tests for :mod:`repro.index.btree` against a sorted-array oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.btree import BPlusTree


def oracle_range(keys, rows, lo, hi, lo_open=False, hi_open=False):
    """Reference implementation on plain arrays (sorted by key)."""
    keys = np.asarray(keys, dtype=float)
    rows = np.asarray(rows, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    keys, rows = keys[order], rows[order]
    mask = (keys > lo) if lo_open else (keys >= lo)
    mask &= (keys < hi) if hi_open else (keys <= hi)
    return rows[mask]


class TestConstruction:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.min_key() is None
        assert len(tree.range_rows(-1, 1)) == 0

    def test_bulk_load_small(self):
        keys = np.array([3.0, 1.0, 2.0])
        tree = BPlusTree.bulk_load(keys, np.arange(3))
        assert len(tree) == 3
        assert list(tree.range_rows(1.0, 3.0)) == [1, 2, 0]

    def test_bulk_load_presorted_flag_validated(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load(np.array([2.0, 1.0]), np.arange(2), presorted=True)

    def test_bulk_load_shape_validated(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load(np.zeros(3), np.zeros(2, dtype=np.int64))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BPlusTree(leaf_capacity=1)
        with pytest.raises(ValueError):
            BPlusTree(fanout=2)

    def test_bulk_load_builds_multiple_levels(self):
        n = 10_000
        tree = BPlusTree.bulk_load(
            np.arange(n, dtype=float), np.arange(n), leaf_capacity=16, fanout=4
        )
        assert tree.height >= 4
        tree.check_invariants()

    def test_min_key(self):
        tree = BPlusTree.bulk_load(np.array([5.0, 2.0, 9.0]), np.arange(3))
        assert tree.min_key() == 2.0


class TestRangeQueries:
    @pytest.fixture()
    def loaded(self):
        rng = np.random.default_rng(7)
        keys = rng.uniform(0, 100, size=5000)
        rows = np.arange(5000)
        tree = BPlusTree.bulk_load(keys, rows, leaf_capacity=32, fanout=8)
        return tree, keys, rows

    def test_full_range(self, loaded):
        tree, keys, rows = loaded
        assert set(tree.range_rows()) == set(rows)

    def test_point_lookup_with_duplicates(self):
        keys = np.array([1.0, 2.0, 2.0, 2.0, 3.0])
        tree = BPlusTree.bulk_load(keys, np.arange(5), leaf_capacity=2)
        assert set(tree.lookup(2.0)) == {1, 2, 3}

    def test_open_bounds(self, loaded):
        tree, keys, rows = loaded
        lo, hi = 25.0, 75.0
        got = tree.range_rows(lo, hi, lo_open=True, hi_open=True)
        expected = oracle_range(keys, rows, lo, hi, True, True)
        assert sorted(got) == sorted(expected)

    def test_count_matches_range(self, loaded):
        tree, keys, rows = loaded
        for lo, hi in [(0, 100), (10, 20), (50, 50), (99, 1)]:
            assert tree.count_range(lo, hi) == len(tree.range_rows(lo, hi))

    def test_empty_range(self, loaded):
        tree, _, _ = loaded
        assert len(tree.range_rows(200, 300)) == 0
        assert tree.count_range(60, 40) == 0

    def test_rows_returned_in_key_order(self, loaded):
        tree, keys, _ = loaded
        got = tree.range_rows(10.0, 90.0)
        got_keys = keys[got]
        assert np.all(np.diff(got_keys) >= 0)

    def test_nodes_visited_increases(self, loaded):
        tree, _, _ = loaded
        before = tree.nodes_visited
        tree.range_rows(40, 60)
        assert tree.nodes_visited > before

    @given(
        keys=st.lists(st.floats(min_value=0, max_value=100), min_size=0, max_size=300),
        lo=st.floats(min_value=-10, max_value=110),
        hi=st.floats(min_value=-10, max_value=110),
        lo_open=st.booleans(),
        hi_open=st.booleans(),
    )
    @settings(max_examples=80)
    def test_range_matches_oracle(self, keys, lo, hi, lo_open, hi_open):
        rows = np.arange(len(keys))
        tree = BPlusTree.bulk_load(np.array(keys), rows, leaf_capacity=4, fanout=4)
        got = tree.range_rows(lo, hi, lo_open, hi_open)
        expected = oracle_range(keys, rows, lo, hi, lo_open, hi_open)
        assert sorted(got) == sorted(expected)


class TestInsert:
    def test_insert_into_empty(self):
        tree = BPlusTree(leaf_capacity=4, fanout=4)
        for i, key in enumerate([5.0, 1.0, 3.0, 2.0, 4.0]):
            tree.insert(key, i)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_insert_causes_splits(self):
        tree = BPlusTree(leaf_capacity=4, fanout=4)
        rng = np.random.default_rng(3)
        keys = rng.uniform(0, 1, size=500)
        for i, key in enumerate(keys):
            tree.insert(key, i)
        tree.check_invariants()
        assert tree.height > 2
        assert len(tree) == 500
        assert sorted(tree.range_rows()) == list(range(500))

    def test_insert_after_bulk_load(self):
        tree = BPlusTree.bulk_load(
            np.arange(100, dtype=float), np.arange(100), leaf_capacity=8
        )
        tree.insert(50.5, 1000)
        tree.check_invariants()
        assert 1000 in set(tree.range_rows(50, 51))

    @given(
        st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=200)
    )
    @settings(max_examples=50)
    def test_insert_matches_oracle(self, keys):
        tree = BPlusTree(leaf_capacity=4, fanout=4)
        for i, key in enumerate(keys):
            tree.insert(key, i)
        tree.check_invariants()
        got = tree.range_rows(2.0, 8.0)
        expected = oracle_range(keys, np.arange(len(keys)), 2.0, 8.0)
        assert sorted(got) == sorted(expected)


class TestDelete:
    def test_delete_present_pair(self):
        tree = BPlusTree.bulk_load(np.array([1.0, 2.0, 3.0]), np.arange(3))
        assert tree.delete(2.0, 1)
        assert len(tree) == 2
        assert list(tree.lookup(2.0)) == []
        tree.check_invariants()

    def test_delete_missing_key(self):
        tree = BPlusTree.bulk_load(np.array([1.0, 2.0]), np.arange(2))
        assert not tree.delete(5.0, 0)
        assert not tree.delete(1.0, 99)  # right key, wrong row
        assert len(tree) == 2

    def test_delete_one_of_duplicates(self):
        keys = np.array([2.0] * 6)
        tree = BPlusTree.bulk_load(keys, np.arange(6), leaf_capacity=2)
        assert tree.delete(2.0, 3)
        assert sorted(tree.lookup(2.0)) == [0, 1, 2, 4, 5]
        tree.check_invariants()

    def test_delete_duplicates_spanning_leaves(self):
        keys = np.array([1.0, 2.0, 2.0, 2.0, 2.0, 3.0])
        tree = BPlusTree.bulk_load(keys, np.arange(6), leaf_capacity=2)
        for row in [1, 2, 3, 4]:
            assert tree.delete(2.0, row)
        assert list(tree.lookup(2.0)) == []
        assert sorted(tree.range_rows()) == [0, 5]
        tree.check_invariants()

    def test_delete_everything(self):
        rng = np.random.default_rng(7)
        keys = rng.uniform(0, 1, size=200)
        tree = BPlusTree.bulk_load(keys, np.arange(200), leaf_capacity=4, fanout=4)
        order = rng.permutation(200)
        for i, row in enumerate(order):
            assert tree.delete(keys[row], int(row)), f"step {i}"
            tree.check_invariants()
        assert len(tree) == 0
        assert len(tree.range_rows()) == 0

    def test_interleaved_insert_delete_matches_oracle(self):
        rng = np.random.default_rng(8)
        tree = BPlusTree(leaf_capacity=4, fanout=4)
        live = {}
        next_row = 0
        for _ in range(800):
            if live and rng.random() < 0.45:
                row = int(rng.choice(list(live)))
                assert tree.delete(live.pop(row), row)
            else:
                key = float(rng.uniform(0, 10))
                tree.insert(key, next_row)
                live[next_row] = key
                next_row += 1
        tree.check_invariants()
        got = sorted(tree.range_rows())
        assert got == sorted(live)

    @given(
        st.lists(st.floats(min_value=0, max_value=5), min_size=1, max_size=80),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_delete_property(self, keys, data):
        tree = BPlusTree.bulk_load(
            np.array(keys), np.arange(len(keys)), leaf_capacity=4, fanout=4
        )
        n_delete = data.draw(st.integers(0, len(keys)))
        victims = data.draw(
            st.lists(
                st.integers(0, len(keys) - 1),
                min_size=n_delete,
                max_size=n_delete,
                unique=True,
            )
        )
        for row in victims:
            assert tree.delete(keys[row], row)
        tree.check_invariants()
        survivors = sorted(set(range(len(keys))) - set(victims))
        assert sorted(tree.range_rows()) == survivors
