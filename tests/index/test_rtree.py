"""Tests for :mod:`repro.index.rtree` and :mod:`repro.index.rstar`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.index.rtree import RTree


def brute_search(points, lo, hi):
    mask = np.all(points >= lo, axis=1) & np.all(points <= hi, axis=1)
    return set(np.flatnonzero(mask))


class TestBulkLoad:
    def test_empty(self):
        tree = RTree.bulk_load_points(np.empty((0, 2)))
        assert len(tree) == 0
        assert tree.search([0, 0], [1, 1]) == []

    def test_single_point(self):
        tree = RTree.bulk_load_points(np.array([[0.5, 0.5]]))
        assert tree.search([0, 0], [1, 1]) == [0]
        assert tree.search([0.6, 0], [1, 1]) == []

    def test_invariants_various_sizes(self):
        rng = np.random.default_rng(11)
        for n in [1, 10, 64, 65, 500, 5000]:
            pts = rng.uniform(0, 1, size=(n, 3))
            tree = RTree.bulk_load_points(pts, max_entries=16)
            tree.check_invariants()
            assert len(tree) == n

    def test_height_grows_logarithmically(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, size=(4096, 2))
        tree = RTree.bulk_load_points(pts, max_entries=16)
        # 4096 points / 16 per leaf = 256 leaves; 256/16 = 16; height 4
        assert tree.height <= 4

    def test_all_payloads_present(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 1, size=(300, 2))
        tree = RTree.bulk_load_points(pts, max_entries=8)
        assert sorted(tree.all_payloads()) == list(range(300))

    def test_box_entries(self):
        los = np.array([[0.0, 0.0], [2.0, 2.0]])
        his = np.array([[1.0, 1.0], [3.0, 3.0]])
        tree = RTree.bulk_load_boxes(los, his, ["a", "b"])
        assert tree.search([0.5, 0.5], [0.6, 0.6]) == ["a"]
        assert set(tree.search([0.0, 0.0], [5.0, 5.0])) == {"a", "b"}

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RTree.bulk_load_boxes(np.zeros((2, 2)), np.zeros((3, 2)), [1, 2])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RTree(0)
        with pytest.raises(ValueError):
            RTree(2, max_entries=2)
        with pytest.raises(ValueError):
            RTree(2, max_entries=8, min_entries=5)

    @given(arrays(np.float64, (40, 2), elements=st.floats(0, 1)))
    @settings(max_examples=40)
    def test_search_matches_brute_force(self, pts):
        tree = RTree.bulk_load_points(pts, max_entries=8)
        lo = np.array([0.25, 0.25])
        hi = np.array([0.75, 0.75])
        assert set(tree.search(lo, hi)) == brute_search(pts, lo, hi)


class TestInsert:
    def test_incremental_inserts_match_brute_force(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 1, size=(400, 2))
        tree = RTree(2, max_entries=8)
        for i, p in enumerate(pts):
            tree.insert_point(p, i)
        tree.check_invariants()
        assert len(tree) == 400
        lo, hi = np.array([0.2, 0.3]), np.array([0.7, 0.9])
        assert set(tree.search(lo, hi)) == brute_search(pts, lo, hi)

    def test_insert_rectangles(self):
        rng = np.random.default_rng(6)
        lows = rng.uniform(0, 0.8, size=(150, 3))
        highs = lows + rng.uniform(0, 0.2, size=(150, 3))
        tree = RTree(3, max_entries=8)
        for i in range(150):
            tree.insert(lows[i], highs[i], i)
        tree.check_invariants()
        lo, hi = np.zeros(3), np.full(3, 0.5)
        expected = {
            i
            for i in range(150)
            if np.all(lows[i] <= hi) and np.all(highs[i] >= lo)
        }
        assert set(tree.search(lo, hi)) == expected

    def test_insert_into_bulk_loaded(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 1, size=(200, 2))
        tree = RTree.bulk_load_points(pts, max_entries=8)
        tree.insert_point([0.5, 0.5], 999)
        tree.check_invariants()
        assert 999 in tree.search([0.4, 0.4], [0.6, 0.6])

    def test_dimension_validation(self):
        tree = RTree(2)
        with pytest.raises(ValueError):
            tree.insert_point([1.0, 2.0, 3.0], 0)

    def test_duplicate_points_allowed(self):
        tree = RTree(2, max_entries=4)
        for i in range(50):
            tree.insert_point([0.5, 0.5], i)
        tree.check_invariants()
        assert sorted(tree.search([0.5, 0.5], [0.5, 0.5])) == list(range(50))

    @given(arrays(np.float64, (60, 2), elements=st.floats(0, 1)))
    @settings(max_examples=25, deadline=None)
    def test_insert_property(self, pts):
        tree = RTree(2, max_entries=4)
        for i, p in enumerate(pts):
            tree.insert_point(p, i)
        tree.check_invariants()
        lo, hi = np.array([0.1, 0.1]), np.array([0.9, 0.6])
        assert set(tree.search(lo, hi)) == brute_search(pts, lo, hi)


class TestDelete:
    def test_delete_existing(self):
        rng = np.random.default_rng(8)
        pts = rng.uniform(0, 1, size=(100, 2))
        tree = RTree.bulk_load_points(pts, max_entries=8)
        assert tree.delete(pts[10], pts[10], 10)
        tree.check_invariants()
        assert len(tree) == 99
        assert 10 not in tree.search(pts[10], pts[10])

    def test_delete_missing_returns_false(self):
        tree = RTree.bulk_load_points(np.array([[0.1, 0.1]]))
        assert not tree.delete([0.9, 0.9], [0.9, 0.9], 5)
        assert not tree.delete([0.1, 0.1], [0.1, 0.1], 5)  # wrong payload

    def test_delete_all(self):
        rng = np.random.default_rng(9)
        pts = rng.uniform(0, 1, size=(120, 2))
        tree = RTree.bulk_load_points(pts, max_entries=8)
        order = rng.permutation(120)
        for i in order:
            assert tree.delete(pts[i], pts[i], int(i))
        tree.check_invariants()
        assert len(tree) == 0
        assert tree.search([0, 0], [1, 1]) == []

    def test_delete_then_search_consistent(self):
        rng = np.random.default_rng(10)
        pts = rng.uniform(0, 1, size=(200, 3))
        tree = RTree.bulk_load_points(pts, max_entries=8)
        removed = set(rng.choice(200, size=80, replace=False).tolist())
        for i in removed:
            assert tree.delete(pts[i], pts[i], int(i))
        tree.check_invariants()
        lo, hi = np.zeros(3), np.ones(3)
        assert set(tree.search(lo, hi)) == set(range(200)) - removed

    def test_interleaved_insert_delete(self):
        rng = np.random.default_rng(12)
        tree = RTree(2, max_entries=4)
        live = {}
        next_id = 0
        for step in range(600):
            if live and rng.random() < 0.4:
                key = rng.choice(list(live.keys()))
                p = live.pop(key)
                assert tree.delete(p, p, key)
            else:
                p = rng.uniform(0, 1, size=2)
                tree.insert_point(p, next_id)
                live[next_id] = p
                next_id += 1
        tree.check_invariants()
        assert len(tree) == len(live)
        got = set(tree.search([0, 0], [1, 1]))
        assert got == set(live.keys())


class TestNearest:
    def brute_knn(self, points, query, k):
        dist = np.sum((points - query) ** 2, axis=1)
        return set(np.argsort(dist, kind="stable")[:k])

    def test_single_nearest(self):
        pts = np.array([[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]])
        tree = RTree.bulk_load_points(pts, max_entries=4)
        assert tree.nearest([0.45, 0.45], k=1) == [1]

    def test_k_nearest_matches_brute_force(self):
        rng = np.random.default_rng(17)
        pts = rng.uniform(0, 1, size=(500, 3))
        tree = RTree.bulk_load_points(pts, max_entries=16)
        query = np.array([0.3, 0.7, 0.2])
        for k in [1, 5, 20]:
            got = set(tree.nearest(query, k=k))
            dist = np.sum((pts - query) ** 2, axis=1)
            got_dists = sorted(dist[list(got)])
            exp_dists = sorted(dist)[:k]
            np.testing.assert_allclose(got_dists, exp_dists)

    def test_k_larger_than_tree(self):
        pts = np.array([[0.1, 0.1], [0.9, 0.9]])
        tree = RTree.bulk_load_points(pts)
        assert sorted(tree.nearest([0.5, 0.5], k=10)) == [0, 1]

    def test_empty_tree(self):
        tree = RTree.bulk_load_points(np.empty((0, 2)))
        assert tree.nearest([0.5, 0.5], k=3) == []

    def test_validation(self):
        tree = RTree.bulk_load_points(np.array([[0.0, 0.0]]))
        with pytest.raises(ValueError):
            tree.nearest([0.0, 0.0], k=0)
        with pytest.raises(ValueError):
            tree.nearest([0.0], k=1)

    @given(arrays(np.float64, (30, 2), elements=st.floats(0, 1)))
    @settings(max_examples=30)
    def test_nearest_property(self, pts):
        tree = RTree.bulk_load_points(pts, max_entries=4)
        query = np.array([0.5, 0.5])
        got = tree.nearest(query, k=3)
        dist = np.sum((pts - query) ** 2, axis=1)
        got_d = sorted(dist[got])
        exp_d = sorted(dist)[: len(got)]
        np.testing.assert_allclose(got_d, exp_d)


class TestStats:
    def test_nodes_accessed_counts(self):
        rng = np.random.default_rng(13)
        pts = rng.uniform(0, 1, size=(1000, 2))
        tree = RTree.bulk_load_points(pts, max_entries=8)
        tree.reset_stats()
        tree.search([0.4, 0.4], [0.6, 0.6])
        small = tree.nodes_accessed
        tree.reset_stats()
        tree.search([0.0, 0.0], [1.0, 1.0])
        full = tree.nodes_accessed
        assert 0 < small < full


class TestRStarInternals:
    def test_forced_reinsertion_branch_executes(self, monkeypatch):
        """R*'s defining heuristic must actually run under ordinary inserts."""
        from repro.index import rstar

        calls = {"n": 0}
        original = rstar._force_reinsert

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(rstar, "_force_reinsert", counting)
        rng = np.random.default_rng(99)
        tree = RTree(2, max_entries=8)
        for i, p in enumerate(rng.uniform(0, 1, size=(200, 2))):
            tree.insert_point(p, i)
        tree.check_invariants()
        assert calls["n"] > 0

    def test_split_branch_executes(self, monkeypatch):
        from repro.index import rstar

        calls = {"n": 0}
        original = rstar._split

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(rstar, "_split", counting)
        rng = np.random.default_rng(98)
        tree = RTree(2, max_entries=8)
        for i, p in enumerate(rng.uniform(0, 1, size=(300, 2))):
            tree.insert_point(p, i)
        tree.check_invariants()
        assert calls["n"] > 0
