"""Unit and property tests for :mod:`repro.geometry.box`."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.box import (
    Box,
    decompose_difference,
    merge_aligned_boxes,
    pairwise_disjoint,
    total_volume,
    union_mask,
)
from repro.geometry.interval import Interval


def boxes(ndim, lo=-10.0, hi=10.0):
    coord = st.floats(min_value=lo, max_value=hi)
    return st.builds(
        lambda los, his: Box.closed(
            [min(a, b) for a, b in zip(los, his)],
            [max(a, b) for a, b in zip(los, his)],
        ),
        st.lists(coord, min_size=ndim, max_size=ndim),
        st.lists(coord, min_size=ndim, max_size=ndim),
    )


def points(ndim, n=32, lo=-12.0, hi=12.0):
    return arrays(
        np.float64,
        (n, ndim),
        elements=st.floats(min_value=lo, max_value=hi),
    )


class TestBasics:
    def test_closed_roundtrip(self):
        box = Box.closed([0.0, 1.0], [2.0, 3.0])
        assert box.ndim == 2
        np.testing.assert_array_equal(box.lo(), [0.0, 1.0])
        np.testing.assert_array_equal(box.hi(), [2.0, 3.0])

    def test_closed_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Box.closed([0.0], [1.0, 2.0])

    def test_contains_point(self):
        box = Box.closed([0.0, 0.0], [1.0, 1.0])
        assert box.contains_point([0.5, 0.5])
        assert box.contains_point([0.0, 1.0])
        assert not box.contains_point([1.5, 0.5])

    def test_mask_respects_open_faces(self):
        box = Box(
            [
                Interval(0.0, 1.0, lo_open=True),
                Interval.closed(0.0, 1.0),
            ]
        )
        pts = np.array([[0.0, 0.5], [0.5, 0.5], [1.0, 1.0]])
        np.testing.assert_array_equal(box.mask(pts), [False, True, True])

    def test_mask_shape_validation(self):
        box = Box.closed([0.0], [1.0])
        with pytest.raises(ValueError):
            box.mask(np.zeros((3, 2)))

    def test_volume(self):
        assert Box.closed([0.0, 0.0], [2.0, 3.0]).volume() == 6.0
        assert Box.closed([0.0], [0.0]).volume() == 0.0

    def test_universe_contains_everything(self):
        u = Box.universe(3)
        assert u.contains_point([1e9, -1e9, 0.0])

    def test_corner_at_least(self):
        corner = Box.corner_at_least([1.0, 2.0])
        assert corner.contains_point([1.0, 2.0])
        assert corner.contains_point([5.0, 5.0])
        assert not corner.contains_point([0.5, 5.0])

    def test_equality_and_hash(self):
        a = Box.closed([0.0, 0.0], [1.0, 1.0])
        b = Box.closed([0.0, 0.0], [1.0, 1.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Box.closed([0.0, 0.0], [1.0, 2.0])

    def test_ndim_mismatch_raises(self):
        with pytest.raises(ValueError):
            Box.closed([0.0], [1.0]).intersect(Box.closed([0.0, 0.0], [1.0, 1.0]))


class TestSetAlgebra:
    def test_intersect_simple(self):
        a = Box.closed([0.0, 0.0], [2.0, 2.0])
        b = Box.closed([1.0, 1.0], [3.0, 3.0])
        inter = a.intersect(b)
        np.testing.assert_array_equal(inter.lo(), [1.0, 1.0])
        np.testing.assert_array_equal(inter.hi(), [2.0, 2.0])

    def test_overlaps_touching_faces(self):
        a = Box.closed([0.0, 0.0], [1.0, 1.0])
        b = Box.closed([1.0, 0.0], [2.0, 1.0])
        assert a.overlaps(b)

    def test_contains_box(self):
        outer = Box.closed([0.0, 0.0], [10.0, 10.0])
        inner = Box.closed([1.0, 1.0], [2.0, 2.0])
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    @given(boxes(2), boxes(2), points(2))
    def test_intersection_membership(self, a, b, pts):
        inter_mask = a.intersect(b).mask(pts)
        np.testing.assert_array_equal(inter_mask, a.mask(pts) & b.mask(pts))


class TestSubtractBox:
    def test_hole_in_middle_2d(self):
        outer = Box.closed([0.0, 0.0], [10.0, 10.0])
        hole = Box.closed([4.0, 4.0], [6.0, 6.0])
        pieces = outer.subtract_box(hole)
        assert pairwise_disjoint(pieces)
        assert math.isclose(total_volume(pieces), 100.0 - 4.0)

    def test_no_overlap_returns_self(self):
        a = Box.closed([0.0, 0.0], [1.0, 1.0])
        b = Box.closed([5.0, 5.0], [6.0, 6.0])
        assert a.subtract_box(b) == [a]

    def test_full_cover_returns_empty(self):
        a = Box.closed([1.0, 1.0], [2.0, 2.0])
        b = Box.closed([0.0, 0.0], [3.0, 3.0])
        assert a.subtract_box(b) == []

    @given(boxes(3), boxes(3), points(3))
    @settings(max_examples=60)
    def test_partition_property(self, a, b, pts):
        """Pieces of a \\ b plus a & b exactly tile a (point-wise)."""
        pieces = a.subtract_box(b)
        in_pieces = union_mask(pieces, pts)
        in_inter = a.intersect(b).mask(pts)
        in_a = a.mask(pts)
        # disjoint decomposition: piece-membership and intersection-membership
        # never overlap, and together equal membership in a.
        assert not np.any(in_pieces & in_inter)
        np.testing.assert_array_equal(in_pieces | in_inter, in_a)

    @given(boxes(2), boxes(2))
    @settings(max_examples=60)
    def test_pieces_pairwise_disjoint(self, a, b):
        assert pairwise_disjoint(a.subtract_box(b))


class TestSubtractCorner:
    def test_2d_corner(self):
        box = Box.closed([0.0, 0.0], [10.0, 10.0])
        pieces = box.subtract_corner([4.0, 6.0])
        assert len(pieces) == 2
        assert pairwise_disjoint(pieces)
        # volume removed: (10-4) * (10-6) = 24
        assert math.isclose(total_volume(pieces), 100.0 - 24.0)

    def test_corner_outside_box_is_noop(self):
        box = Box.closed([0.0, 0.0], [1.0, 1.0])
        pieces = box.subtract_corner([5.0, 5.0])
        assert math.isclose(total_volume(pieces), 1.0)

    def test_corner_below_box_removes_all(self):
        box = Box.closed([1.0, 1.0], [2.0, 2.0])
        assert box.subtract_corner([0.0, 0.0]) == []

    def test_piece_count_bounded_by_ndim(self):
        box = Box.closed([0.0] * 5, [1.0] * 5)
        pieces = box.subtract_corner([0.5] * 5)
        assert len(pieces) <= 5

    @given(
        boxes(3),
        st.lists(st.floats(min_value=-12, max_value=12), min_size=3, max_size=3),
        points(3),
    )
    @settings(max_examples=60)
    def test_corner_partition_property(self, box, corner, pts):
        pieces = box.subtract_corner(corner)
        corner_box = Box.corner_at_least(corner)
        in_pieces = union_mask(pieces, pts)
        in_corner = box.intersect(corner_box).mask(pts)
        in_box = box.mask(pts)
        assert not np.any(in_pieces & in_corner)
        np.testing.assert_array_equal(in_pieces | in_corner, in_box)

    @given(
        boxes(2),
        st.lists(st.floats(min_value=-12, max_value=12), min_size=2, max_size=2),
    )
    @settings(max_examples=60)
    def test_corner_pieces_disjoint(self, box, corner):
        assert pairwise_disjoint(box.subtract_corner(corner))


class TestMergeAlignedBoxes:
    def test_merges_abutting_halves(self):
        a = Box([Interval(0.0, 1.0, hi_open=True), Interval.closed(0.0, 1.0)])
        b = Box([Interval.closed(1.0, 2.0), Interval.closed(0.0, 1.0)])
        merged = merge_aligned_boxes([a, b])
        assert len(merged) == 1
        assert merged[0].contains_point([1.0, 0.5])
        assert merged[0].contains_point([0.0, 0.0])
        assert merged[0].contains_point([2.0, 1.0])

    def test_does_not_merge_with_double_covered_boundary(self):
        a = Box.closed([0.0, 0.0], [1.0, 1.0])
        b = Box.closed([1.0, 0.0], [2.0, 1.0])  # x=1 covered by both
        assert len(merge_aligned_boxes([a, b])) == 2

    def test_does_not_merge_with_gap(self):
        a = Box([Interval(0.0, 1.0, hi_open=True), Interval.closed(0.0, 1.0)])
        b = Box([Interval(1.0, 2.0, lo_open=True), Interval.closed(0.0, 1.0)])
        assert len(merge_aligned_boxes([a, b])) == 2  # x=1.0 in neither

    def test_does_not_merge_across_different_cross_sections(self):
        a = Box([Interval(0.0, 1.0, hi_open=True), Interval.closed(0.0, 1.0)])
        b = Box([Interval.closed(1.0, 2.0), Interval.closed(0.0, 2.0)])
        assert len(merge_aligned_boxes([a, b])) == 2

    def test_chains_of_merges(self):
        slabs = [
            Box([Interval(float(i), float(i + 1), hi_open=True),
                 Interval.closed(0.0, 1.0)])
            for i in range(5)
        ]
        merged = merge_aligned_boxes(slabs)
        assert len(merged) == 1

    def test_drops_empty_boxes(self):
        empty = Box.closed([1.0, 1.0], [0.0, 0.0])
        assert merge_aligned_boxes([empty]) == []

    @given(
        boxes(2),
        st.lists(
            st.tuples(st.floats(-10, 10), st.floats(-10, 10)), max_size=4
        ),
        points(2),
    )
    @settings(max_examples=60)
    def test_merge_preserves_coverage(self, base, corners, pts):
        """Merging a corner-subtraction tiling never changes membership."""
        pieces = [base]
        for corner in corners:
            pieces = [
                p for piece in pieces for p in piece.subtract_corner(corner)
            ]
        merged = merge_aligned_boxes(pieces)
        assert len(merged) <= max(len(pieces), 1)
        assert pairwise_disjoint(merged)
        np.testing.assert_array_equal(
            union_mask(merged, pts), union_mask(pieces, pts)
        )


class TestDecomposeDifference:
    def test_multiple_removals(self):
        base = Box.closed([0.0, 0.0], [10.0, 10.0])
        removals = [
            Box.closed([0.0, 0.0], [5.0, 5.0]),
            Box.closed([5.0, 5.0], [10.0, 10.0]),
        ]
        pieces = decompose_difference(base, removals)
        assert pairwise_disjoint(pieces)
        # remaining: two 5x5 quadrants minus the shared boundary (measure 0)
        assert math.isclose(total_volume(pieces), 50.0)

    def test_removals_cover_base(self):
        base = Box.closed([0.0], [1.0])
        assert decompose_difference(base, [Box.closed([-1.0], [2.0])]) == []

    @given(boxes(2), st.lists(boxes(2), max_size=4), points(2))
    @settings(max_examples=50)
    def test_difference_property(self, base, removals, pts):
        pieces = decompose_difference(base, removals)
        in_pieces = union_mask(pieces, pts)
        expected = base.mask(pts) & ~union_mask(removals, pts)
        np.testing.assert_array_equal(in_pieces, expected)
