"""Tests for :mod:`repro.geometry.dominance`."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.constraints import Constraints
from repro.geometry.dominance import (
    dominance_region,
    dominated_mask,
    dominates,
    dominates_all,
)


coords = st.lists(st.floats(min_value=-50, max_value=50), min_size=3, max_size=3)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])

    def test_weak_tie_in_one_dim(self):
        assert dominates([1.0, 1.0], [1.0, 2.0])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1.0, 2.0], [1.0, 2.0])

    def test_incomparable(self):
        assert not dominates([1.0, 3.0], [3.0, 1.0])
        assert not dominates([3.0, 1.0], [1.0, 3.0])

    @given(coords)
    def test_irreflexive(self, p):
        assert not dominates(p, p)

    @given(coords, coords)
    def test_antisymmetric(self, p, q):
        assert not (dominates(p, q) and dominates(q, p))

    @given(coords, coords, coords)
    def test_transitive(self, p, q, r):
        if dominates(p, q) and dominates(q, r):
            assert dominates(p, r)


class TestVectorized:
    @given(
        arrays(np.float64, (8, 3), elements=st.floats(-50, 50)),
        coords,
    )
    def test_dominates_all_matches_scalar(self, pts, t):
        mask = dominates_all(pts, t)
        expected = [dominates(row, t) for row in pts]
        np.testing.assert_array_equal(mask, expected)

    @given(
        arrays(np.float64, (8, 3), elements=st.floats(-50, 50)),
        arrays(np.float64, (4, 3), elements=st.floats(-50, 50)),
    )
    def test_dominated_mask_matches_scalar(self, pts, doms):
        mask = dominated_mask(pts, doms)
        expected = [
            any(dominates(d, row) for d in doms) for row in pts
        ]
        np.testing.assert_array_equal(mask, expected)

    def test_dominated_mask_empty_dominators(self):
        pts = np.ones((5, 2))
        mask = dominated_mask(pts, np.empty((0, 2)))
        assert not mask.any()


class TestDominanceRegion:
    def test_unconstrained_region_contains_dominated(self):
        region = dominance_region([1.0, 1.0])
        assert region.contains_point([2.0, 2.0])
        assert region.contains_point([1.0, 1.0])  # closed corner
        assert not region.contains_point([0.5, 2.0])

    def test_constrained_region_clipped(self):
        c = Constraints([0.0, 0.0], [3.0, 3.0])
        region = dominance_region([1.0, 1.0], c)
        assert region.contains_point([2.0, 2.0])
        assert not region.contains_point([4.0, 4.0])

    @given(coords, arrays(np.float64, (16, 3), elements=st.floats(-60, 60)))
    def test_region_membership_equals_weak_dominance(self, s, pts):
        """DR(s) is exactly {p : p >= s} (weak dominance closed corner)."""
        region = dominance_region(s)
        expected = np.all(pts >= np.asarray(s), axis=1)
        np.testing.assert_array_equal(region.mask(pts), expected)

    @given(coords, arrays(np.float64, (16, 3), elements=st.floats(-60, 60)))
    def test_strictly_dominated_points_are_in_region(self, s, pts):
        region = dominance_region(s)
        mask = region.mask(pts)
        for inside, row in zip(mask, pts):
            if dominates(s, row):
                assert inside
