"""Unit and property tests for :mod:`repro.geometry.interval`."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.interval import Interval


finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


def intervals(min_lo=-100, max_hi=100):
    return st.builds(
        Interval,
        st.floats(min_value=min_lo, max_value=max_hi),
        st.floats(min_value=min_lo, max_value=max_hi),
        st.booleans(),
        st.booleans(),
    )


class TestBasics:
    def test_closed_contains_endpoints(self):
        iv = Interval.closed(1.0, 2.0)
        assert iv.contains(1.0)
        assert iv.contains(2.0)
        assert iv.contains(1.5)
        assert not iv.contains(0.999)
        assert not iv.contains(2.001)

    def test_open_excludes_endpoints(self):
        iv = Interval(1.0, 2.0, lo_open=True, hi_open=True)
        assert not iv.contains(1.0)
        assert not iv.contains(2.0)
        assert iv.contains(1.5)

    def test_half_open(self):
        iv = Interval(1.0, 2.0, lo_open=False, hi_open=True)
        assert iv.contains(1.0)
        assert not iv.contains(2.0)

    def test_universe_contains_everything(self):
        iv = Interval.universe()
        assert iv.contains(0.0)
        assert iv.contains(1e300)
        assert iv.contains(-1e300)

    def test_empty_when_reversed(self):
        assert Interval.closed(2.0, 1.0).is_empty()

    def test_degenerate_closed_point_not_empty(self):
        iv = Interval.closed(1.0, 1.0)
        assert not iv.is_empty()
        assert iv.contains(1.0)

    def test_degenerate_open_point_is_empty(self):
        assert Interval(1.0, 1.0, lo_open=True).is_empty()
        assert Interval(1.0, 1.0, hi_open=True).is_empty()

    def test_length(self):
        assert Interval.closed(1.0, 3.0).length() == 2.0
        assert Interval.closed(3.0, 1.0).length() == 0.0

    def test_str(self):
        assert str(Interval(0.0, 1.0, lo_open=True)) == "(0, 1]"
        assert str(Interval.closed(0.0, 1.0)) == "[0, 1]"


class TestIntersect:
    def test_disjoint(self):
        a = Interval.closed(0.0, 1.0)
        b = Interval.closed(2.0, 3.0)
        assert a.intersect(b).is_empty()
        assert not a.overlaps(b)

    def test_touching_closed_endpoints_overlap(self):
        a = Interval.closed(0.0, 1.0)
        b = Interval.closed(1.0, 2.0)
        inter = a.intersect(b)
        assert not inter.is_empty()
        assert inter.contains(1.0)

    def test_touching_open_endpoint_disjoint(self):
        a = Interval(0.0, 1.0, hi_open=True)
        b = Interval.closed(1.0, 2.0)
        assert a.intersect(b).is_empty()

    def test_open_flag_wins_on_equal_bound(self):
        a = Interval(0.0, 1.0, lo_open=True)
        b = Interval.closed(0.0, 1.0)
        inter = a.intersect(b)
        assert inter.lo_open
        assert not inter.contains(0.0)

    @given(intervals(), intervals(), finite)
    def test_intersection_membership(self, a, b, x):
        assert a.intersect(b).contains(x) == (a.contains(x) and b.contains(x))


class TestContainsInterval:
    def test_subset(self):
        assert Interval.closed(0.0, 10.0).contains_interval(Interval.closed(1.0, 2.0))

    def test_equal_is_subset(self):
        iv = Interval.closed(0.0, 1.0)
        assert iv.contains_interval(iv)

    def test_open_cannot_contain_closed_at_same_bound(self):
        a = Interval(0.0, 1.0, lo_open=True)
        b = Interval.closed(0.0, 1.0)
        assert not a.contains_interval(b)
        assert b.contains_interval(a)

    def test_empty_is_subset_of_anything(self):
        empty = Interval.closed(2.0, 1.0)
        assert Interval.closed(5.0, 6.0).contains_interval(empty)

    @given(intervals(), intervals())
    def test_containment_consistent_with_intersection(self, a, b):
        if a.contains_interval(b) and not b.is_empty():
            inter = a.intersect(b)
            # b subset of a  =>  a & b == b as a point set
            for x in (b.lo, b.hi, (b.lo + b.hi) / 2):
                assert inter.contains(x) == b.contains(x)


class TestBelowAbove:
    def test_below_strict(self):
        iv = Interval.closed(0.0, 10.0)
        below = iv.below(5.0)
        assert below.contains(4.999)
        assert not below.contains(5.0)

    def test_above_closed_by_default(self):
        iv = Interval.closed(0.0, 10.0)
        above = iv.above(5.0)
        assert above.contains(5.0)
        assert above.contains(10.0)
        assert not above.contains(4.999)

    @given(intervals(), finite, finite)
    def test_below_above_partition(self, iv, x, probe):
        """below(x, strict) and above(x) partition the interval exactly."""
        below = iv.below(x, strict=True)
        above = iv.above(x, strict=False)
        in_below = below.contains(probe)
        in_above = above.contains(probe)
        assert not (in_below and in_above)
        assert (in_below or in_above) == iv.contains(probe)
