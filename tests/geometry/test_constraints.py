"""Tests for :mod:`repro.geometry.constraints`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.box import pairwise_disjoint, union_mask
from repro.geometry.constraints import Constraints, delta_region, overlap_region


def constraints(ndim, lo=-10.0, hi=10.0):
    coord = st.floats(min_value=lo, max_value=hi)
    return st.builds(
        lambda a, b: Constraints(
            [min(x, y) for x, y in zip(a, b)],
            [max(x, y) for x, y in zip(a, b)],
        ),
        st.lists(coord, min_size=ndim, max_size=ndim),
        st.lists(coord, min_size=ndim, max_size=ndim),
    )


class TestConstruction:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Constraints([1.0, 0.0], [0.0, 1.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Constraints([0.0], [1.0, 2.0])

    def test_arrays_are_frozen(self):
        c = Constraints([0.0], [1.0])
        with pytest.raises(ValueError):
            c.lo[0] = 5.0

    def test_covering(self):
        pts = np.array([[1.0, 5.0], [3.0, 2.0], [2.0, 4.0]])
        c = Constraints.covering(pts)
        np.testing.assert_array_equal(c.lo, [1.0, 2.0])
        np.testing.assert_array_equal(c.hi, [3.0, 5.0])

    def test_covering_empty_raises(self):
        with pytest.raises(ValueError):
            Constraints.covering(np.empty((0, 2)))

    def test_from_box_roundtrip(self):
        c = Constraints([0.0, 1.0], [2.0, 3.0])
        again = Constraints.from_box(c.region())
        assert again == c


class TestMembership:
    def test_satisfied_mask_matches_region_mask(self):
        c = Constraints([0.0, 0.0], [1.0, 1.0])
        pts = np.array([[0.5, 0.5], [1.0, 1.0], [0.0, -0.1], [2.0, 0.5]])
        np.testing.assert_array_equal(
            c.satisfied_mask(pts), c.region().mask(pts)
        )

    def test_satisfies_single_point(self):
        c = Constraints([0.0], [1.0])
        assert c.satisfies([0.5])
        assert not c.satisfies([1.5])

    @given(constraints(3), arrays(np.float64, (16, 3), elements=st.floats(-12, 12)))
    def test_mask_property(self, c, pts):
        expected = np.all((pts >= c.lo) & (pts <= c.hi), axis=1)
        np.testing.assert_array_equal(c.satisfied_mask(pts), expected)


class TestRelations:
    def test_contains(self):
        outer = Constraints([0.0, 0.0], [10.0, 10.0])
        inner = Constraints([1.0, 1.0], [2.0, 2.0])
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_overlap_volume(self):
        a = Constraints([0.0, 0.0], [2.0, 2.0])
        b = Constraints([1.0, 1.0], [3.0, 3.0])
        assert a.overlap_volume(b) == pytest.approx(1.0)
        assert a.overlaps(b)

    def test_disjoint_overlap_volume_zero(self):
        a = Constraints([0.0], [1.0])
        b = Constraints([2.0], [3.0])
        assert a.overlap_volume(b) == 0.0
        assert not a.overlaps(b)

    def test_volume_and_widths(self):
        c = Constraints([0.0, 0.0], [2.0, 3.0])
        assert c.volume() == pytest.approx(6.0)
        np.testing.assert_array_equal(c.widths(), [2.0, 3.0])

    def test_with_bound(self):
        c = Constraints([0.0, 0.0], [1.0, 1.0])
        c2 = c.with_bound(0, upper=5.0)
        assert c2.hi[0] == 5.0
        assert c2.lo[0] == 0.0
        # original untouched
        assert c.hi[0] == 1.0

    def test_hash_and_eq(self):
        a = Constraints([0.0], [1.0])
        b = Constraints([0.0], [1.0])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestRegions:
    def test_overlap_region(self):
        a = Constraints([0.0, 0.0], [2.0, 2.0])
        b = Constraints([1.0, 1.0], [3.0, 3.0])
        o = overlap_region(a, b)
        np.testing.assert_array_equal(o.lo(), [1.0, 1.0])
        np.testing.assert_array_equal(o.hi(), [2.0, 2.0])

    def test_delta_region_case_a_is_single_slab(self):
        """Decreasing one lower constraint yields one rectangular slab."""
        old = Constraints([1.0, 0.0], [2.0, 2.0])
        new = Constraints([0.0, 0.0], [2.0, 2.0])
        delta = delta_region(old, new)
        assert len(delta) == 1
        assert delta[0].volume() == pytest.approx(2.0)

    @given(
        constraints(2),
        constraints(2),
        arrays(np.float64, (32, 2), elements=st.floats(-12, 12)),
    )
    @settings(max_examples=60)
    def test_delta_region_property(self, old, new, pts):
        delta = delta_region(old, new)
        assert pairwise_disjoint(delta)
        in_delta = union_mask(delta, pts)
        expected = new.satisfied_mask(pts) & ~old.satisfied_mask(pts)
        np.testing.assert_array_equal(in_delta, expected)
