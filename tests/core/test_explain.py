"""Tests for the engine's dry-run EXPLAIN interface."""

import numpy as np
import pytest

from repro.core.cbcs import CBCS
from repro.data.generator import generate
from repro.geometry.constraints import Constraints
from repro.storage.table import DiskTable


@pytest.fixture()
def engine():
    data = generate("independent", 2000, 3, seed=42)
    return CBCS(DiskTable(data))


class TestExplain:
    def test_miss_plan(self, engine):
        c = Constraints([0.2] * 3, [0.8] * 3)
        plan = engine.explain(c)
        assert plan.case == "miss"
        assert not plan.cache_hit
        assert plan.range_queries == 1
        assert plan.estimated_points > 0
        assert "no cache item" in plan.summary()

    def test_explain_does_not_touch_disk_or_cache(self, engine):
        c = Constraints([0.2] * 3, [0.8] * 3)
        io_before = engine.table.stats.snapshot()
        hits, misses = engine.cache.hits, engine.cache.misses
        engine.explain(c)
        delta = engine.table.stats.delta_since(io_before)
        assert delta.range_queries == 0
        assert delta.points_read == 0
        assert (engine.cache.hits, engine.cache.misses) == (hits, misses)
        assert len(engine.cache) == 0

    def test_exact_plan(self, engine):
        c = Constraints([0.2] * 3, [0.8] * 3)
        engine.query(c)
        plan = engine.explain(Constraints(c.lo, c.hi))
        assert plan.case == "exact"
        assert plan.range_queries == 0
        assert plan.reusable_points > 0

    def test_refinement_plan_matches_execution(self, engine):
        first = Constraints([0.2] * 3, [0.8] * 3)
        engine.query(first)
        refined = Constraints([0.2] * 3, [0.8, 0.8, 0.85])
        plan = engine.explain(refined)
        assert plan.case == "case_c"
        assert plan.cache_hit
        outcome = engine.query(refined)
        assert outcome.case == plan.case
        assert outcome.range_queries == plan.range_queries
        # the estimate bounds the fetch (most-selective-dim upper bound)
        assert outcome.points_read <= plan.estimated_points

    def test_case_b_plan_reads_nothing(self, engine):
        first = Constraints([0.2] * 3, [0.8] * 3)
        engine.query(first)
        plan = engine.explain(Constraints([0.2] * 3, [0.8, 0.8, 0.7]))
        assert plan.case == "case_b"
        assert plan.range_queries == 0
        assert plan.estimated_points == 0

    def test_dimension_validation(self, engine):
        with pytest.raises(ValueError):
            engine.explain(Constraints([0.0], [1.0]))

    def test_summary_for_hit(self, engine):
        c = Constraints([0.2] * 3, [0.8] * 3)
        engine.query(c)
        plan = engine.explain(Constraints([0.2] * 3, [0.8, 0.8, 0.85]))
        text = plan.summary()
        assert "case=case_c" in text
        assert "item #" in text
