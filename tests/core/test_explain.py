"""Tests for the engine's dry-run EXPLAIN interface."""

import numpy as np
import pytest

from repro.core.cbcs import CBCS
from repro.data.generator import generate
from repro.geometry.constraints import Constraints
from repro.storage.table import DiskTable


@pytest.fixture()
def engine():
    data = generate("independent", 2000, 3, seed=42)
    return CBCS(DiskTable(data))


class TestExplain:
    def test_miss_plan(self, engine):
        c = Constraints([0.2] * 3, [0.8] * 3)
        plan = engine.explain(c)
        assert plan.case == "miss"
        assert not plan.cache_hit
        assert plan.range_queries == 1
        assert plan.estimated_points > 0
        assert "no cache item" in plan.summary()

    def test_explain_does_not_touch_disk_or_cache(self, engine):
        c = Constraints([0.2] * 3, [0.8] * 3)
        io_before = engine.table.stats.snapshot()
        hits, misses = engine.cache.hits, engine.cache.misses
        engine.explain(c)
        delta = engine.table.stats.delta_since(io_before)
        assert delta.range_queries == 0
        assert delta.points_read == 0
        assert (engine.cache.hits, engine.cache.misses) == (hits, misses)
        assert len(engine.cache) == 0

    def test_exact_plan(self, engine):
        c = Constraints([0.2] * 3, [0.8] * 3)
        engine.query(c)
        plan = engine.explain(Constraints(c.lo, c.hi))
        assert plan.case == "exact"
        assert plan.range_queries == 0
        assert plan.reusable_points > 0

    def test_refinement_plan_matches_execution(self, engine):
        first = Constraints([0.2] * 3, [0.8] * 3)
        engine.query(first)
        refined = Constraints([0.2] * 3, [0.8, 0.8, 0.85])
        plan = engine.explain(refined)
        assert plan.case == "case_c"
        assert plan.cache_hit
        outcome = engine.query(refined)
        assert outcome.case == plan.case
        assert outcome.range_queries == plan.range_queries
        # the estimate bounds the fetch (most-selective-dim upper bound)
        assert outcome.points_read <= plan.estimated_points

    def test_case_b_plan_reads_nothing(self, engine):
        first = Constraints([0.2] * 3, [0.8] * 3)
        engine.query(first)
        plan = engine.explain(Constraints([0.2] * 3, [0.8, 0.8, 0.7]))
        assert plan.case == "case_b"
        assert plan.range_queries == 0
        assert plan.estimated_points == 0

    def test_dimension_validation(self, engine):
        with pytest.raises(ValueError):
            engine.explain(Constraints([0.0], [1.0]))

    def test_summary_for_hit(self, engine):
        c = Constraints([0.2] * 3, [0.8] * 3)
        engine.query(c)
        plan = engine.explain(Constraints([0.2] * 3, [0.8, 0.8, 0.85]))
        text = plan.summary()
        assert "case=case_c" in text
        assert "item #" in text

    def test_explain_plans_carry_candidate_scores(self, engine):
        engine.query(Constraints([0.2] * 3, [0.8] * 3))
        engine.query(Constraints([0.1] * 3, [0.7] * 3))
        plan = engine.explain(Constraints([0.2] * 3, [0.8, 0.8, 0.85]))
        scored = plan.candidates_scored
        assert len(scored) == 2
        assert scored[0]["selected"] and scored[0]["rejection"] is None
        assert not scored[1]["selected"]
        assert scored[1]["rejection"] == engine.strategy.rejection_reason
        for row in scored:
            assert row["overlap_volume"] > 0
            assert row["case"] in {"case_c", "general_stable", "general_unstable"}
        # the scoring table is explain-only: executed plans skip the work
        assert engine.query(Constraints([0.15] * 3, [0.75] * 3)) is not None

    def test_estimated_points_bound_actual_across_queries(self, engine):
        rng = np.random.default_rng(7)
        for _ in range(10):
            lo = rng.random(3) * 0.3
            hi = 0.5 + rng.random(3) * 0.5
            c = Constraints(lo, hi)
            plan = engine.explain(c)
            outcome = engine.query(c)
            assert outcome.case == plan.case
            # most-selective-dimension estimate is an upper bound on the
            # bitmap plan's exact match count
            assert outcome.io.points_read <= plan.estimated_points


class TestExplainSelectionCounters:
    """explain() + query() must count one lookup and one selection, not two."""

    def test_explain_then_query_counts_one_selection(self):
        from repro.obs import Observability

        obs = Observability()
        data = generate("independent", 2000, 3, seed=42)
        engine = CBCS(DiskTable(data, obs=obs), obs=obs)
        engine.query(Constraints([0.2] * 3, [0.8] * 3))  # warm: miss, no selection
        strategy = engine.strategy.name
        m = obs.metrics
        assert m.counter_value("strategy_selections_total", strategy=strategy) == 0.0
        lookups_before = m.counter_value(
            "cache_lookups_total", strategy=strategy, outcome="hit"
        )

        refined = Constraints([0.2] * 3, [0.8, 0.8, 0.85])
        engine.explain(refined)
        assert (
            m.counter_value("strategy_selections_total", strategy=strategy) == 0.0
        ), "explain() must not count a selection"
        engine.query(refined)
        assert (
            m.counter_value("strategy_selections_total", strategy=strategy) == 1.0
        ), "explain()+query() must count exactly one selection"
        assert (
            m.counter_value("cache_lookups_total", strategy=strategy, outcome="hit")
            == lookups_before + 1.0
        )
        engine.close()
