"""Tests for case classification and the Theorem 2-5 specialized solutions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cases import (
    CASE_A,
    CASE_B,
    CASE_C,
    CASE_D,
    CASE_DISJOINT,
    CASE_EXACT,
    GENERAL_STABLE,
    GENERAL_UNSTABLE,
    classify_change,
    classify_dimension_changes,
    solve_case_a,
    solve_case_b,
    solve_case_c,
    solve_case_d,
    solve_single_bound_case,
)
from repro.data.generator import generate
from repro.geometry.box import pairwise_disjoint, union_mask
from repro.geometry.constraints import Constraints

from tests.core.conftest import (
    assert_same_point_set,
    constrained_skyline_oracle,
)


OLD = Constraints([0.3, 0.3], [0.7, 0.7])


class TestClassify:
    def test_exact(self):
        assert classify_change(OLD, Constraints([0.3, 0.3], [0.7, 0.7])) == CASE_EXACT

    def test_disjoint(self):
        assert classify_change(OLD, Constraints([0.8, 0.8], [0.9, 0.9])) == CASE_DISJOINT

    def test_case_a_lower_decreased(self):
        assert classify_change(OLD, Constraints([0.2, 0.3], [0.7, 0.7])) == CASE_A

    def test_case_b_upper_decreased(self):
        assert classify_change(OLD, Constraints([0.3, 0.3], [0.7, 0.6])) == CASE_B

    def test_case_c_upper_increased(self):
        assert classify_change(OLD, Constraints([0.3, 0.3], [0.7, 0.8])) == CASE_C

    def test_case_d_lower_increased(self):
        assert classify_change(OLD, Constraints([0.3, 0.4], [0.7, 0.7])) == CASE_D

    def test_general_stable(self):
        new = Constraints([0.2, 0.2], [0.8, 0.6])
        assert classify_change(OLD, new) == GENERAL_STABLE

    def test_general_unstable(self):
        new = Constraints([0.4, 0.2], [0.8, 0.6])
        assert classify_change(OLD, new) == GENERAL_UNSTABLE

    def test_two_bounds_in_one_dim_is_general(self):
        new = Constraints([0.2, 0.3], [0.8, 0.7])
        assert classify_change(OLD, new) == GENERAL_STABLE

    def test_ndim_mismatch(self):
        with pytest.raises(ValueError):
            classify_change(OLD, Constraints([0.0], [1.0]))

    def test_dimension_changes(self):
        new = Constraints([0.2, 0.4], [0.9, 0.7])
        labels = classify_dimension_changes(OLD, new)
        assert sorted(labels) == sorted([CASE_A, CASE_C, CASE_D])

    def test_solve_single_bound_rejects_general(self):
        with pytest.raises(ValueError):
            solve_single_bound_case(
                OLD, Constraints([0.2, 0.2], [0.7, 0.7]), np.empty((0, 2))
            )


class PaperStyleExample:
    """A hand-constructed 2-D instance in the spirit of Figure 3.

    Old constraints [0.3, 0.3] x [0.7, 0.7]; the old skyline is
    {e=(0.32, 0.50), f=(0.40, 0.38), g=(0.55, 0.32)}.
    """

    data = np.array(
        [
            [0.32, 0.50],  # e: old skyline
            [0.40, 0.38],  # f: old skyline
            [0.55, 0.32],  # g: old skyline
            [0.45, 0.55],  # h: dominated by f
            [0.60, 0.40],  # i: dominated by f and g
            [0.39, 0.65],  # j: dominated only by e
            [0.20, 0.60],  # a: left of old region (case a territory)
            [0.25, 0.35],  # b: left of old region, dominates e
            [0.72, 0.31],  # k: right of old region, below g's dominance
            [0.75, 0.60],  # l: right of old region, dominated by g
            [0.50, 0.20],  # m: below old region
        ]
    )
    old = OLD
    old_skyline = data[[0, 1, 2]]


class TestCaseA(PaperStyleExample):
    new = Constraints([0.15, 0.3], [0.7, 0.7])

    def test_classified(self):
        assert classify_change(self.old, self.new) == CASE_A

    def test_fetch_region_is_delta_c(self):
        sol = solve_case_a(self.old, self.new, self.old_skyline)
        assert pairwise_disjoint(sol.fetch_boxes)
        fetched = self.data[union_mask(sol.fetch_boxes, self.data)]
        # exactly the points in Delta C: a and b
        assert_same_point_set(fetched, self.data[[6, 7]])

    def test_solution_matches_oracle(self):
        sol = solve_case_a(self.old, self.new, self.old_skyline)
        fetched = self.data[union_mask(sol.fetch_boxes, self.data)]
        result = sol.solve(fetched)
        assert_same_point_set(
            result, constrained_skyline_oracle(self.data, self.new)
        )

    def test_new_point_can_dominate_cached(self):
        """b dominates e: the merge pass must expel cached points."""
        sol = solve_case_a(self.old, self.new, self.old_skyline)
        fetched = self.data[union_mask(sol.fetch_boxes, self.data)]
        result = sol.solve(fetched)
        assert not any(np.array_equal(p, self.data[0]) for p in result)


class TestCaseB(PaperStyleExample):
    new = Constraints([0.3, 0.3], [0.7, 0.45])

    def test_classified(self):
        assert classify_change(self.old, self.new) == CASE_B

    def test_no_fetching(self):
        sol = solve_case_b(self.old, self.new, self.old_skyline)
        assert sol.fetch_boxes == []
        assert not sol.needs_skyline_pass

    def test_filter_only(self):
        sol = solve_case_b(self.old, self.new, self.old_skyline)
        result = sol.solve(np.empty((0, 2)))
        # e (y=0.50) falls outside; f and g remain
        assert_same_point_set(result, self.data[[1, 2]])
        assert_same_point_set(
            result, constrained_skyline_oracle(self.data, self.new)
        )


class TestCaseC(PaperStyleExample):
    new = Constraints([0.3, 0.3], [0.8, 0.7])

    def test_classified(self):
        assert classify_change(self.old, self.new) == CASE_C

    def test_dominance_prunes_delta_c(self):
        sol = solve_case_c(self.old, self.new, self.old_skyline)
        fetched_mask = union_mask(sol.fetch_boxes, self.data)
        # k is in Delta C and not dominated by the old skyline: fetched.
        assert fetched_mask[8]
        # l is in Delta C but dominated by g: pruned, never read.
        assert not fetched_mask[9]

    def test_solution_matches_oracle(self):
        sol = solve_case_c(self.old, self.new, self.old_skyline)
        fetched = self.data[union_mask(sol.fetch_boxes, self.data)]
        result = sol.solve(fetched)
        assert_same_point_set(
            result, constrained_skyline_oracle(self.data, self.new)
        )

    def test_fetches_fewer_than_case_a_logic(self):
        """Theorem 4's pruning reads strictly less than fetching all of
        Delta C whenever cached dominance covers part of it."""
        from repro.geometry.constraints import delta_region

        sol = solve_case_c(self.old, self.new, self.old_skyline)
        naive_delta = delta_region(self.old, self.new)
        pruned = int(union_mask(sol.fetch_boxes, self.data).sum())
        unpruned = int(union_mask(naive_delta, self.data).sum())
        assert pruned < unpruned


class TestCaseD(PaperStyleExample):
    new = Constraints([0.38, 0.3], [0.7, 0.7])

    def test_classified(self):
        assert classify_change(self.old, self.new) == CASE_D

    def test_surviving_points_kept(self):
        sol = solve_case_d(self.old, self.new, self.old_skyline)
        # e (x=0.32) is expelled; f, g survive
        assert_same_point_set(sol.reusable, self.data[[1, 2]])

    def test_fetch_covers_invalidated_region_only(self):
        sol = solve_case_d(self.old, self.new, self.old_skyline)
        fetched_mask = union_mask(sol.fetch_boxes, self.data)
        # j was dominated by expelled e and still satisfies new: must fetch.
        assert fetched_mask[5]
        # h is dominated by surviving f: not fetched.
        assert not fetched_mask[3]
        # i is dominated by surviving f/g: not fetched.
        assert not fetched_mask[4]

    def test_solution_matches_oracle(self):
        sol = solve_case_d(self.old, self.new, self.old_skyline)
        fetched = self.data[union_mask(sol.fetch_boxes, self.data)]
        result = sol.solve(fetched)
        assert_same_point_set(
            result, constrained_skyline_oracle(self.data, self.new)
        )


class TestCasePropertyBased:
    """Random single-bound changes: every case solution equals the oracle."""

    @given(
        seed=st.integers(0, 10_000),
        dim=st.integers(0, 2),
        which=st.sampled_from(["lo_down", "lo_up", "hi_down", "hi_up"]),
        amount=st.floats(min_value=0.01, max_value=0.25),
    )
    @settings(max_examples=120, deadline=None)
    def test_single_bound_solutions(self, seed, dim, which, amount):
        data = generate("independent", 120, 3, seed=seed % 50)
        old = Constraints([0.25] * 3, [0.75] * 3)
        if which == "lo_down":
            new = old.with_bound(dim, lower=0.25 - amount)
        elif which == "lo_up":
            new = old.with_bound(dim, lower=min(0.25 + amount, 0.74))
        elif which == "hi_down":
            new = old.with_bound(dim, upper=max(0.75 - amount, 0.26))
        else:
            new = old.with_bound(dim, upper=0.75 + amount)
        old_sky = constrained_skyline_oracle(data, old)
        case, sol = solve_single_bound_case(old, new, old_sky)
        assert case in (CASE_A, CASE_B, CASE_C, CASE_D)
        assert pairwise_disjoint(sol.fetch_boxes)
        fetched = data[union_mask(sol.fetch_boxes, data)]
        # whatever is fetched must satisfy the new constraints' region
        # or at least be outside nothing we claimed -- check final result:
        result = sol.solve(fetched[new.satisfied_mask(fetched)])
        assert_same_point_set(
            result,
            constrained_skyline_oracle(data, new),
            context=f"case {case}",
        )
