"""Stateful property testing of the full engine.

Hypothesis drives random interleavings of queries, refinements, inserts,
deletes, vacuums and cache clears against a :class:`DynamicCBCS` engine;
after every single action, the invariant is checked: the engine's answer to
a fresh query equals the brute-force constrained skyline of the current
live data.  This is the strongest end-to-end guarantee in the test suite.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.ampr import ApproximateMPR
from repro.core.cache import SkylineCache
from repro.core.dynamic import DynamicCBCS
from repro.core.multi import MultiItemMPR
from repro.geometry.constraints import Constraints
from repro.skyline.reference import brute_force_skyline
from repro.storage.table import DiskTable

coord = st.floats(min_value=0.0, max_value=1.0)


def canonical(points):
    points = np.asarray(points, dtype=float)
    if len(points) == 0:
        return points
    return points[np.lexsort(points.T[::-1])]


class EngineMachine(RuleBasedStateMachine):
    NDIM = 2

    @initialize(
        seed=st.integers(0, 1000),
        region_kind=st.sampled_from(["ampr1", "ampr3", "multi"]),
        capacity=st.sampled_from([None, 4]),
    )
    def setup(self, seed, region_kind, capacity):
        rng = np.random.default_rng(seed)
        data = rng.uniform(0, 1, size=(120, self.NDIM))
        regions = {
            "ampr1": ApproximateMPR(1),
            "ampr3": ApproximateMPR(3),
            "multi": MultiItemMPR(k=1, max_items=2),
        }
        self.engine = DynamicCBCS(
            DiskTable(data),
            cache=SkylineCache(capacity=capacity),
            region_computer=regions[region_kind],
        )
        self.rng = rng
        self.last_query = None

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def _check(self, constraints):
        out = self.engine.query(constraints)
        live = self.engine.table.data_view()[self.engine.table._alive]
        inside = live[constraints.satisfied_mask(live)]
        expected = inside[brute_force_skyline(inside)] if len(inside) else inside
        got = canonical(out.skyline)
        exp = canonical(expected)
        assert got.shape == exp.shape, (
            f"case={out.case}: got {got.shape[0]}, expected {exp.shape[0]}"
        )
        if len(exp):
            np.testing.assert_allclose(got, exp)
        self.last_query = constraints

    @rule(a=coord, b=coord, c=coord, d=coord)
    def fresh_query(self, a, b, c, d):
        lo = [min(a, b), min(c, d)]
        hi = [max(a, b), max(c, d)]
        self._check(Constraints(lo, hi))

    @precondition(lambda self: self.last_query is not None)
    @rule(
        dim=st.integers(0, NDIM - 1),
        which=st.sampled_from(["lo", "hi"]),
        delta=st.floats(min_value=-0.15, max_value=0.15),
    )
    def refine_last_query(self, dim, which, delta):
        q = self.last_query
        if which == "lo":
            new_lo = float(np.clip(q.lo[dim] + delta, 0.0, q.hi[dim]))
            refined = q.with_bound(dim, lower=new_lo)
        else:
            new_hi = float(np.clip(q.hi[dim] + delta, q.lo[dim], 1.0))
            refined = q.with_bound(dim, upper=new_hi)
        self._check(refined)

    @rule(n=st.integers(1, 3), seed=st.integers(0, 10_000))
    def insert_rows(self, n, seed):
        rows = np.random.default_rng(seed).uniform(0, 1, size=(n, self.NDIM))
        self.engine.insert_points(rows)

    @precondition(lambda self: self.engine.table.live_count > 20)
    @rule(seed=st.integers(0, 10_000))
    def delete_rows(self, seed):
        alive = np.flatnonzero(self.engine.table._alive)
        pick = np.random.default_rng(seed).choice(alive, size=2, replace=False)
        self.engine.delete_points(pick)

    @rule()
    def vacuum(self):
        self.engine.table.vacuum()

    @rule()
    def clear_cache(self):
        self.engine.cache.clear()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def cache_respects_capacity(self):
        if getattr(self, "engine", None) is None:
            return
        cap = self.engine.cache.capacity
        if cap is not None:
            assert len(self.engine.cache) <= cap

    @invariant()
    def cached_items_are_antichains(self):
        if getattr(self, "engine", None) is None:
            return
        for item in self.engine.cache:
            sky = item.skyline
            for s in sky:
                le = np.all(sky <= s, axis=1)
                lt = np.any(sky < s, axis=1)
                assert not np.any(le & lt), "cached skyline holds a dominated point"


EngineMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
TestEngineMachine = EngineMachine.TestCase
