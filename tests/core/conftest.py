"""Shared fixtures and oracles for the core tests."""

import numpy as np
import pytest

from repro.geometry.constraints import Constraints
from repro.skyline.reference import brute_force_skyline


def constrained_skyline_oracle(data: np.ndarray, c: Constraints) -> np.ndarray:
    """Brute-force ``Sky(S, C)``: the ground truth for everything."""
    inside = data[c.satisfied_mask(data)]
    return inside[brute_force_skyline(inside)]


def canonical(points: np.ndarray) -> np.ndarray:
    """Rows sorted lexicographically, for order-insensitive comparison."""
    points = np.asarray(points, dtype=float)
    if len(points) == 0:
        return points
    return points[np.lexsort(points.T[::-1])]


def assert_same_point_set(got: np.ndarray, expected: np.ndarray, context: str = ""):
    got_c, exp_c = canonical(got), canonical(expected)
    assert got_c.shape == exp_c.shape, (
        f"{context}: got {got_c.shape[0]} points, expected {exp_c.shape[0]}"
    )
    np.testing.assert_allclose(got_c, exp_c, err_msg=context)


def random_constraints(rng: np.random.Generator, ndim: int) -> Constraints:
    bounds = np.sort(rng.uniform(0.0, 1.0, size=(2, ndim)), axis=0)
    return Constraints(bounds[0], bounds[1])
