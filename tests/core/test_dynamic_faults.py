"""S4: DynamicCBCS interleaved insert/delete/query under storage faults.

The chaos soak exercises a static engine; this pins the *dynamic* engine:
with the ``default`` fault profile injected under the resilient storage
stack, an interleaved update/query schedule must keep every answer either
bit-exact against an uncrashed fault-free reference or explicitly flagged
on a stale/unavailable degradation rung -- never silently wrong.
"""

import numpy as np
import pytest

from repro.bench.chaos import _same_multiset
from repro.core.cbcs import RUNG_STALE, RUNG_UNAVAILABLE
from repro.core.dynamic import DynamicCBCS
from repro.data.generator import generate
from repro.storage.faults import FaultInjector, FaultyDiskTable
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

_STALE_RUNGS = (RUNG_STALE, RUNG_UNAVAILABLE)


def _schedule(rng, data, queries, n_ops):
    """Seeded interleave of inserts, deletes (live ids only), and queries."""
    ndim = data.shape[1]
    alive = list(range(len(data)))
    steps = []
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.35:
            rows = rng.random((int(rng.integers(1, 4)), ndim))
            steps.append(("insert", rows))
        elif roll < 0.6 and len(alive) > 10:
            picks = rng.choice(len(alive), size=int(rng.integers(1, 3)), replace=False)
            rowids = [alive[int(p)] for p in picks]
            for rid in rowids:
                alive.remove(rid)
            steps.append(("delete", np.asarray(rowids, dtype=np.int64)))
        else:
            steps.append(("query", next(queries)))
    return steps


@pytest.mark.parametrize("seed", [0, 3])
def test_interleaved_updates_exact_or_flagged_under_default_faults(seed):
    data = generate("independent", 300, 3, seed=seed)
    injector = FaultInjector(profile="default", seed=seed)
    faulty = DynamicCBCS(
        FaultyDiskTable(DiskTable(data.copy()), injector),
        resilience=True,
    )
    reference = DynamicCBCS(DiskTable(data.copy()))

    rng = np.random.default_rng(seed + 100)
    queries = iter(
        WorkloadGenerator(data, seed=seed + 200).independent_queries(40)
    )
    checked = flagged = 0
    for kind, payload in _schedule(rng, data, queries, n_ops=40):
        if kind == "insert":
            faulty.insert_points(payload)
            reference.insert_points(payload)
        elif kind == "delete":
            faulty.delete_points(payload)
            reference.delete_points(payload)
        else:
            outcome = faulty.query(payload)
            ref = reference.query(payload)
            checked += 1
            if outcome.degraded in _STALE_RUNGS:
                flagged += 1  # legitimately non-exact, and says so
                continue
            assert _same_multiset(
                np.asarray(outcome.skyline), np.asarray(ref.skyline)
            ), f"silently wrong answer under faults (seed={seed})"
    assert checked > 5
    # The drill is only meaningful if most answers stayed exact.
    assert checked - flagged >= checked // 2


def test_interleaved_updates_without_faults_are_bit_exact():
    """Same schedule, no injector: every answer must be exact, none flagged."""
    data = generate("anticorrelated", 250, 3, seed=7)
    engine = DynamicCBCS(DiskTable(data.copy()))
    reference = DynamicCBCS(DiskTable(data.copy()))
    rng = np.random.default_rng(7)
    queries = iter(WorkloadGenerator(data, seed=77).independent_queries(30))
    for kind, payload in _schedule(rng, data, queries, n_ops=30):
        if kind == "insert":
            engine.insert_points(payload)
            reference.insert_points(payload)
        elif kind == "delete":
            engine.delete_points(payload)
            reference.delete_points(payload)
        else:
            outcome = engine.query(payload)
            ref = reference.query(payload)
            assert outcome.degraded is None
            assert _same_multiset(
                np.asarray(outcome.skyline), np.asarray(ref.skyline)
            )


def test_refresh_failure_falls_back_to_eviction():
    """A delete-triggered refresh that degrades must evict, not serve stale."""
    data = generate("independent", 120, 2, seed=5)
    injector = FaultInjector(profile="none", seed=5)
    engine = DynamicCBCS(
        FaultyDiskTable(DiskTable(data.copy()), injector),
        resilience=True,
        on_delete="refresh",
    )
    queries = iter(WorkloadGenerator(data, seed=55).independent_queries(5))
    constraints = next(queries)
    outcome = engine.query(constraints)
    target = None
    for item in engine.cache:
        if len(item.skyline):
            target = item
            break
    if target is None:
        pytest.skip("workload produced no cacheable item")
    victim = np.asarray(target.skyline[0])
    rowid = int(
        np.flatnonzero(np.all(np.isclose(engine.table.data_view(), victim), axis=1))[0]
    )
    # Force the storage stack hard-down so the refresh range query degrades.
    injector.force_outage(calls=1000)
    engine.delete_points([rowid])
    injector.clear_outage()
    # The item is gone (a future miss), not stale.
    assert all(
        not np.any(np.all(item.skyline == victim, axis=1)) for item in engine.cache
    )
