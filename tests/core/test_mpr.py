"""Property tests for the Missing Points Region (Definition 5, Thms. 6-7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ampr import ApproximateMPR, ExactMPR, nearest_to_corner
from repro.core.mpr import compute_mpr
from repro.data.generator import generate
from repro.geometry.box import pairwise_disjoint, union_mask
from repro.geometry.constraints import Constraints
from repro.skyline.sfs import sfs_skyline

from tests.core.conftest import (
    assert_same_point_set,
    constrained_skyline_oracle,
    random_constraints,
)


def merge_and_solve(mpr, data):
    """Apply Theorem 6: Sky((surviving) + (MPR points), C') -- the caller
    has already restricted the MPR mask to the data."""
    fetched = data[union_mask(mpr.boxes, data)]
    pool = np.vstack([mpr.surviving, fetched]) if len(mpr.surviving) else fetched
    if len(pool) == 0:
        return pool
    return pool[sfs_skyline(pool)]


def constraint_pair(rng, ndim):
    old = random_constraints(rng, ndim)
    new = random_constraints(rng, ndim)
    return old, new


class TestCompleteness:
    """Theorem 6: merging surviving + MPR points reproduces the skyline."""

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("ndim", [2, 3, 4])
    def test_random_pairs(self, seed, ndim):
        rng = np.random.default_rng(seed)
        data = generate("independent", 200, ndim, seed=seed)
        old, new = constraint_pair(rng, ndim)
        old_sky = constrained_skyline_oracle(data, old)
        mpr = compute_mpr(old, old_sky, new)
        result = merge_and_solve(mpr, data)
        assert_same_point_set(
            result,
            constrained_skyline_oracle(data, new),
            context=f"seed={seed} ndim={ndim} stable={mpr.stable}",
        )

    @pytest.mark.parametrize(
        "distribution", ["correlated", "anticorrelated"]
    )
    def test_skewed_distributions(self, distribution):
        rng = np.random.default_rng(99)
        data = generate(distribution, 300, 3, seed=8)
        for _ in range(8):
            old, new = constraint_pair(rng, 3)
            old_sky = constrained_skyline_oracle(data, old)
            mpr = compute_mpr(old, old_sky, new)
            assert_same_point_set(
                merge_and_solve(mpr, data),
                constrained_skyline_oracle(data, new),
            )

    def test_with_exact_duplicates(self):
        """Closed-corner subtraction must not lose duplicate skyline points."""
        rng = np.random.default_rng(3)
        base = generate("independent", 100, 2, seed=3)
        data = np.vstack([base, base[:30]])  # 30 exact duplicates
        for _ in range(10):
            old, new = constraint_pair(rng, 2)
            old_sky = constrained_skyline_oracle(data, old)
            mpr = compute_mpr(old, old_sky, new)
            assert_same_point_set(
                merge_and_solve(mpr, data),
                constrained_skyline_oracle(data, new),
            )

    def test_disjoint_regions_fetch_everything(self):
        data = generate("independent", 100, 2, seed=4)
        old = Constraints([0.0, 0.0], [0.2, 0.2])
        new = Constraints([0.5, 0.5], [0.9, 0.9])
        old_sky = constrained_skyline_oracle(data, old)
        mpr = compute_mpr(old, old_sky, new)
        assert mpr.stable
        assert len(mpr.boxes) == 1
        assert mpr.boxes[0] == new.region()

    def test_empty_cached_skyline(self):
        old = Constraints([0.0, 0.0], [0.1, 0.1])
        new = Constraints([0.05, 0.05], [0.5, 0.5])
        mpr = compute_mpr(old, np.empty((0, 2)), new)
        data = generate("independent", 100, 2, seed=5)
        assert_same_point_set(
            merge_and_solve(mpr, data), constrained_skyline_oracle(data, new)
        )

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            compute_mpr(
                Constraints([0.0], [1.0]),
                np.empty((0, 1)),
                Constraints([0, 0], [1, 1]),
            )
        with pytest.raises(ValueError):
            compute_mpr(
                Constraints([0, 0], [1, 1]),
                np.zeros((2, 3)),
                Constraints([0, 0], [1, 1]),
            )


class TestStructure:
    @pytest.mark.parametrize("seed", range(8))
    def test_boxes_pairwise_disjoint(self, seed):
        rng = np.random.default_rng(seed + 100)
        data = generate("independent", 150, 3, seed=seed)
        old, new = constraint_pair(rng, 3)
        old_sky = constrained_skyline_oracle(data, old)
        mpr = compute_mpr(old, old_sky, new)
        assert pairwise_disjoint(mpr.boxes)

    @pytest.mark.parametrize("seed", range(8))
    def test_boxes_inside_new_region(self, seed):
        rng = np.random.default_rng(seed + 200)
        data = generate("independent", 150, 3, seed=seed)
        old, new = constraint_pair(rng, 3)
        old_sky = constrained_skyline_oracle(data, old)
        mpr = compute_mpr(old, old_sky, new)
        region = new.region()
        for box in mpr.boxes:
            assert region.contains_box(box)

    @pytest.mark.parametrize("seed", range(8))
    def test_minimality_witness(self, seed):
        """Theorem 7's witness property: no surviving cached skyline point
        dominates any part of the MPR -- i.e. subtracting their dominance
        regions again changes nothing."""
        rng = np.random.default_rng(seed + 300)
        data = generate("independent", 150, 3, seed=seed)
        old, new = constraint_pair(rng, 3)
        old_sky = constrained_skyline_oracle(data, old)
        mpr = compute_mpr(old, old_sky, new)
        from repro.geometry.box import Box

        for u in mpr.surviving:
            corner = Box.corner_at_least(u)
            for box in mpr.boxes:
                inter = box.intersect(corner)
                assert inter.is_empty() or inter.volume() == 0.0

    def test_stable_case_has_no_invalidated_boxes(self):
        old = Constraints([0.3, 0.3], [0.7, 0.7])
        new = Constraints([0.2, 0.3], [0.8, 0.7])  # lower down + upper up
        sky = np.array([[0.4, 0.4]])
        mpr = compute_mpr(old, sky, new)
        assert mpr.stable
        assert mpr.invalidated_boxes == []

    def test_unstable_case_reports_invalidated_boxes(self):
        old = Constraints([0.0, 0.0], [1.0, 1.0])
        new = Constraints([0.2, 0.0], [1.0, 1.0])
        sky = np.array([[0.1, 0.1]])  # expelled dominator
        mpr = compute_mpr(old, sky, new)
        assert not mpr.stable
        assert len(mpr.invalidated_boxes) > 0

    def test_shrinking_stable_query_has_empty_mpr(self):
        """Case b shape: pure shrink of a stable item needs no fetching."""
        old = Constraints([0.0, 0.0], [1.0, 1.0])
        new = Constraints([0.0, 0.0], [0.6, 0.6])
        sky = np.array([[0.2, 0.3], [0.3, 0.2]])
        mpr = compute_mpr(old, sky, new)
        assert mpr.boxes == []


class TestApproximateMPR:
    @pytest.mark.parametrize("k", [1, 3, 6])
    @pytest.mark.parametrize("seed", range(6))
    def test_ampr_is_superset_of_mpr(self, k, seed):
        """No false negatives: every dataset point in the exact MPR is also
        covered by the aMPR boxes."""
        rng = np.random.default_rng(seed + 400)
        data = generate("independent", 200, 3, seed=seed)
        old, new = constraint_pair(rng, 3)
        old_sky = constrained_skyline_oracle(data, old)
        exact = ExactMPR().compute(old, old_sky, new)
        approx = ApproximateMPR(k=k).compute(old, old_sky, new)
        in_exact = union_mask(exact.boxes, data)
        in_approx = union_mask(approx.boxes, data)
        assert not np.any(in_exact & ~in_approx)

    @pytest.mark.parametrize("k", [1, 2, 5])
    @pytest.mark.parametrize("seed", range(6))
    def test_ampr_completeness(self, k, seed):
        rng = np.random.default_rng(seed + 500)
        data = generate("independent", 200, 3, seed=seed + 50)
        old, new = constraint_pair(rng, 3)
        old_sky = constrained_skyline_oracle(data, old)
        mpr = ApproximateMPR(k=k).compute(old, old_sky, new)
        assert_same_point_set(
            merge_and_solve(mpr, data), constrained_skyline_oracle(data, new)
        )

    def test_fewer_boxes_than_exact_in_higher_dims(self):
        data = generate("independent", 400, 5, seed=9)
        old = Constraints([0.1] * 5, [0.9] * 5)
        new = Constraints([0.15] * 5, [0.95] * 5)
        old_sky = constrained_skyline_oracle(data, old)
        exact = ExactMPR().compute(old, old_sky, new)
        approx = ApproximateMPR(k=1).compute(old, old_sky, new)
        assert len(approx.boxes) < len(exact.boxes)

    def test_more_nns_prune_more(self):
        """Larger k never covers more data than smaller k."""
        data = generate("independent", 400, 4, seed=10)
        old = Constraints([0.1] * 4, [0.8] * 4)
        new = Constraints([0.1] * 4, [0.9] * 4)
        old_sky = constrained_skyline_oracle(data, old)
        covered = {}
        for k in [1, 3, 10]:
            mpr = ApproximateMPR(k=k).compute(old, old_sky, new)
            covered[k] = int(union_mask(mpr.boxes, data).sum())
        assert covered[10] <= covered[3] <= covered[1]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            ApproximateMPR(k=0)

    def test_name(self):
        assert ApproximateMPR(k=3).name == "aMPR(3NN)"
        assert ExactMPR().name == "MPR"

    def test_nearest_to_corner(self):
        pts = np.array([[0.9, 0.9], [0.1, 0.1], [0.5, 0.5]])
        got = nearest_to_corner(pts, np.array([0.0, 0.0]), 1)
        np.testing.assert_array_equal(got, [[0.1, 0.1]])

    def test_nearest_to_corner_k_larger_than_points(self):
        pts = np.array([[0.9, 0.9]])
        got = nearest_to_corner(pts, np.zeros(2), 5)
        assert len(got) == 1


class TestMPRGeometry:
    """Figure 4: complexity of the MPR grows with dimensionality."""

    def test_2d_single_expansion_is_one_box_per_pruner_cut(self):
        old = Constraints([0.0, 0.0], [0.5, 1.0])
        new = Constraints([0.0, 0.0], [0.7, 1.0])
        sky = np.array([[0.1, 0.2]])
        mpr = compute_mpr(old, sky, new)
        # Delta C minus one corner region stays a small number of rectangles
        assert 1 <= len(mpr.boxes) <= 2

    def test_box_count_grows_with_dimension(self):
        counts = {}
        for ndim in [2, 3, 4, 5]:
            data = generate("independent", 500, ndim, seed=11)
            old = Constraints([0.1] * ndim, [0.8] * ndim)
            new = Constraints([0.1] * ndim, [0.9] * ndim)
            old_sky = constrained_skyline_oracle(data, old)
            mpr = ExactMPR().compute(old, old_sky, new)
            counts[ndim] = len(mpr.boxes)
        assert counts[2] < counts[3] < counts[4] < counts[5]

    @given(st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_completeness_2d(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.uniform(0, 1, size=(80, 2))
        old, new = constraint_pair(rng, 2)
        old_sky = constrained_skyline_oracle(data, old)
        mpr = compute_mpr(old, old_sky, new)
        assert pairwise_disjoint(mpr.boxes)
        assert_same_point_set(
            merge_and_solve(mpr, data), constrained_skyline_oracle(data, new)
        )
