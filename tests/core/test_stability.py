"""Tests of the stability theory (Definition 4, Theorem 1, Corollaries)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stability import guaranteed_stable, is_stable_for, removed_mask
from repro.data.generator import generate
from repro.geometry.constraints import Constraints

from tests.core.conftest import constrained_skyline_oracle, random_constraints


def definition_stable(data, old: Constraints, new: Constraints) -> bool:
    """Definition 4, brute force: every point of S_C not in Sky(S,C) is also
    not in Sky(S,C')."""
    old_sky = {tuple(p) for p in constrained_skyline_oracle(data, old)}
    new_sky = {tuple(p) for p in constrained_skyline_oracle(data, new)}
    in_old_data = old.satisfied_mask(data)
    for p in data[in_old_data]:
        key = tuple(p)
        if key not in old_sky and key in new_sky:
            return False
    return True


def pairs(ndim=2):
    coord = st.floats(min_value=0, max_value=1)
    def build(a, b):
        a = np.asarray(a).reshape(2, ndim)
        b = np.asarray(b).reshape(2, ndim)
        return (
            Constraints(a.min(axis=0), a.max(axis=0)),
            Constraints(b.min(axis=0), b.max(axis=0)),
        )
    box = st.lists(coord, min_size=2 * ndim, max_size=2 * ndim)
    return st.builds(build, box, box)


class TestGuaranteedStable:
    def test_shrinking_upper_is_stable(self):
        old = Constraints([0.0, 0.0], [1.0, 1.0])
        new = Constraints([0.0, 0.0], [0.5, 1.0])
        assert guaranteed_stable(old, new)

    def test_growing_lower_is_unstable(self):
        old = Constraints([0.2, 0.2], [1.0, 1.0])
        new = Constraints([0.4, 0.2], [1.0, 1.0])
        assert not guaranteed_stable(old, new)

    def test_decreasing_lower_is_stable(self):
        old = Constraints([0.2, 0.2], [1.0, 1.0])
        new = Constraints([0.1, 0.2], [1.0, 1.0])
        assert guaranteed_stable(old, new)

    def test_disjoint_is_trivially_stable(self):
        old = Constraints([0.0, 0.0], [0.2, 0.2])
        new = Constraints([0.5, 0.5], [0.9, 0.9])
        assert guaranteed_stable(old, new)

    def test_identical_is_stable(self):
        c = Constraints([0.1, 0.2], [0.8, 0.9])
        assert guaranteed_stable(c, c)

    def test_ndim_mismatch(self):
        with pytest.raises(ValueError):
            guaranteed_stable(Constraints([0.0], [1.0]), Constraints([0, 0], [1, 1]))

    @given(pairs())
    @settings(max_examples=150, deadline=None)
    def test_theorem_1_soundness(self, pair):
        """Whenever Theorem 1 claims stability, Definition 4 must hold on
        any dataset -- checked against brute force on random data."""
        old, new = pair
        if guaranteed_stable(old, new):
            data = generate("independent", 150, 2, seed=17)
            assert definition_stable(data, old, new)

    def test_instability_witness_exists(self):
        """The converse direction: an unstable configuration where a
        dominated point resurfaces (paper Figure 1)."""
        # t dominates s inside the old region; new lower bound expels t.
        data = np.array(
            [
                [0.10, 0.10],  # t: old skyline point, expelled by new lo
                [0.30, 0.30],  # s: dominated by t under old constraints
            ]
        )
        old = Constraints([0.0, 0.0], [1.0, 1.0])
        new = Constraints([0.2, 0.0], [1.0, 1.0])
        assert not guaranteed_stable(old, new)
        assert not definition_stable(data, old, new)


class TestOperationalStability:
    def test_no_expelled_points_means_stable(self):
        """is_stable_for refines Theorem 1: syntactically unstable but no
        cached skyline point actually leaves the region."""
        old = Constraints([0.0, 0.0], [1.0, 1.0])
        new = Constraints([0.05, 0.0], [1.0, 1.0])  # lower increased
        skyline = np.array([[0.3, 0.1], [0.1, 0.3]])  # all still inside
        assert not guaranteed_stable(old, new)
        assert is_stable_for(old, new, skyline)

    def test_expelled_point_means_unstable(self):
        old = Constraints([0.0, 0.0], [1.0, 1.0])
        new = Constraints([0.2, 0.0], [1.0, 1.0])
        skyline = np.array([[0.1, 0.1]])
        assert not is_stable_for(old, new, skyline)

    def test_removed_mask(self):
        new = Constraints([0.2, 0.0], [1.0, 1.0])
        skyline = np.array([[0.1, 0.5], [0.5, 0.1], [0.2, 0.2]])
        np.testing.assert_array_equal(
            removed_mask(skyline, new), [True, False, False]
        )

    def test_removed_mask_empty_skyline(self):
        new = Constraints([0.0, 0.0], [1.0, 1.0])
        assert len(removed_mask(np.empty((0, 2)), new)) == 0


class TestCorollary1:
    """Stable case: new skyline points are cached or outside the old data."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        data = generate("independent", 300, 3, seed=seed)
        old = random_constraints(rng, 3)
        # force a stable change: only decrease lower bounds / move uppers
        new = Constraints(
            old.lo - rng.uniform(0, 0.1, size=3),
            np.clip(old.hi + rng.uniform(-0.1, 0.1, size=3), old.lo, None),
        )
        assert guaranteed_stable(old, new)
        old_sky = {tuple(p) for p in constrained_skyline_oracle(data, old)}
        in_old = old.satisfied_mask(data)
        for p in constrained_skyline_oracle(data, new):
            key = tuple(p)
            in_old_data = bool(old.satisfies(p)) and any(
                np.array_equal(p, q) for q in data[in_old]
            )
            assert key in old_sky or not in_old_data
