"""Tests for cache self-healing: invariants, quarantine, refresh-on-insert,
and counter consistency under capacity pressure."""

import numpy as np
import pytest

from repro.core.cache import SkylineCache
from repro.geometry.constraints import Constraints
from repro.obs import MetricsRegistry


def make_item(cache, x, width=0.1):
    c = Constraints([x, x], [x + width, x + width])
    sky = np.array([[x + 0.01, x + 0.05], [x + 0.05, x + 0.01]])
    return cache.insert(c, sky)


class TestVerifyItem:
    def setup_method(self):
        self.cache = SkylineCache()
        self.item = make_item(self.cache, 0.2)

    def test_healthy_item_passes(self):
        assert self.cache.verify_item(self.item) == []

    def test_non_finite(self):
        self.item.skyline[0, 0] = np.nan
        assert self.cache.verify_item(self.item) == ["non-finite"]

    def test_malformed(self):
        self.item.skyline = np.zeros((2, 3))
        assert self.cache.verify_item(self.item) == ["malformed"]

    def test_mbr_mismatch(self):
        self.item.mbr_hi = self.item.mbr_hi + 1.0
        assert "mbr-mismatch" in self.cache.verify_item(self.item)

    def test_out_of_constraints(self):
        self.item.skyline = np.array([[0.9, 0.9], [0.95, 0.85]])
        self.item.mbr_lo = self.item.skyline.min(axis=0)
        self.item.mbr_hi = self.item.skyline.max(axis=0)
        assert "out-of-constraints" in self.cache.verify_item(self.item)

    def test_dominated(self):
        # second point dominated by the first
        self.item.skyline = np.array([[0.21, 0.21], [0.25, 0.25]])
        self.item.mbr_lo = self.item.skyline.min(axis=0)
        self.item.mbr_hi = self.item.skyline.max(axis=0)
        assert "dominated" in self.cache.verify_item(self.item)


class TestQuarantine:
    def test_quarantine_removes_item(self):
        metrics = MetricsRegistry()
        cache = SkylineCache(metrics=metrics)
        item = make_item(cache, 0.2)
        keeper = make_item(cache, 0.6)
        cache.quarantine(item, reason="non-finite")
        assert len(cache) == 1
        assert cache.quarantined == 1
        assert (
            metrics.counter_value("cache_quarantined_total", reason="non-finite")
            == 1
        )
        # The survivor is still findable; the quarantined item is not.
        found = cache.candidates(Constraints([0.0, 0.0], [1.0, 1.0]))
        assert found == [keeper]

    def test_quarantine_heals_desynced_index(self):
        cache = SkylineCache()
        item = make_item(cache, 0.2)
        keeper = make_item(cache, 0.6)
        # Corrupt the MBR so the R*-tree delete cannot find the entry.
        item.mbr_lo = item.mbr_lo + 5.0
        item.mbr_hi = item.mbr_hi + 5.0
        cache.quarantine(item, reason="mbr-mismatch")
        found = cache.candidates(Constraints([0.0, 0.0], [1.0, 1.0]))
        assert found == [keeper]

    def test_verify_and_heal_quarantines_violator(self):
        cache = SkylineCache()
        item = make_item(cache, 0.2)
        item.skyline[0, 0] = np.inf
        assert cache.verify_and_heal(item) is False
        assert item.item_id not in cache._items

    def test_quarantine_idempotent(self):
        cache = SkylineCache()
        item = make_item(cache, 0.2)
        cache.quarantine(item)
        cache.quarantine(item)
        assert cache.quarantined == 1


class TestInsertRefreshBugfix:
    def test_differing_skyline_replaces_stored_copy(self):
        cache = SkylineCache()
        c = Constraints([0.0, 0.0], [1.0, 1.0])
        old = np.array([[0.4, 0.6], [0.6, 0.4]])
        new = np.array([[0.2, 0.3], [0.3, 0.2]])
        first = cache.insert(c, old)
        second = cache.insert(Constraints(c.lo, c.hi), new)
        assert second is first
        np.testing.assert_array_equal(first.skyline, new)
        np.testing.assert_array_equal(first.mbr_lo, [0.2, 0.2])
        np.testing.assert_array_equal(first.mbr_hi, [0.3, 0.3])
        assert cache.refreshes == 1

    def test_reindex_keeps_lookup_consistent(self):
        cache = SkylineCache()
        c = Constraints([0.0, 0.0], [1.0, 1.0])
        cache.insert(c, np.array([[0.8, 0.9], [0.9, 0.8]]))
        cache.insert(
            Constraints(c.lo, c.hi), np.array([[0.1, 0.2], [0.2, 0.1]])
        )
        # Old MBR region no longer matches; new one does.
        assert cache.candidates(Constraints([0.7, 0.7], [1.0, 1.0])) == []
        assert len(cache.candidates(Constraints([0.0, 0.0], [0.3, 0.3]))) == 1

    def test_identical_skyline_refreshes_without_reindex(self):
        cache = SkylineCache()
        c = Constraints([0.0, 0.0], [1.0, 1.0])
        sky = np.array([[0.4, 0.6], [0.6, 0.4]])
        cache.insert(c, sky)
        cache.insert(Constraints(c.lo, c.hi), sky.copy())
        assert cache.refreshes == 0


class TestCounterConsistencyUnderPressure:
    def test_insertions_evictions_quarantines_reconcile(self):
        metrics = MetricsRegistry()
        cache = SkylineCache(capacity=4, metrics=metrics)
        items = [make_item(cache, 0.05 + 0.09 * i) for i in range(10)]
        assert all(item is not None for item in items)
        # Quarantine one live item, then keep inserting under pressure.
        live = [i for i in items if i.item_id in cache._items]
        cache.quarantine(live[0], reason="non-finite")
        more = [make_item(cache, 0.91 + 0.005 * i, width=0.004) for i in range(5)]
        assert all(item is not None for item in more)

        assert cache.insertions == 15
        assert cache.quarantined == 1
        # Every insert either still lives, was evicted, or was quarantined.
        assert (
            cache.insertions - cache.evictions - cache.quarantined
            == len(cache)
        )
        assert len(cache) <= 4
        assert metrics.counter_value("cache_insertions_total") == 15
        assert (
            metrics.counter_value("cache_evictions_total", policy="lru")
            == cache.evictions
        )
        assert (
            metrics.counter_value("cache_quarantined_total", reason="non-finite")
            == 1
        )
        assert metrics.gauge_value("cache_items") == len(cache)

    def test_stats_expose_new_counters(self):
        cache = SkylineCache(capacity=2)
        make_item(cache, 0.1)
        stats = cache.stats()
        assert "refreshes" in stats and "quarantined" in stats
