"""Tests for the seven cache search strategies (Section 6.1)."""

import numpy as np
import pytest

from repro.core.cache import CacheItem, SkylineCache
from repro.core.strategies import (
    MaxOverlap,
    MaxOverlapSP,
    OptimumDistance,
    Prioritized1D,
    PrioritizedND,
    RandomStrategy,
    default_strategy_suite,
)
from repro.geometry.constraints import Constraints


def item(lo, hi, item_id=0):
    """A cache item whose skyline spans its whole constraint region."""
    c = Constraints(lo, hi)
    sky = np.array([c.lo, c.hi])
    return CacheItem(
        constraints=c,
        skyline=sky,
        mbr_lo=c.lo.copy(),
        mbr_hi=c.hi.copy(),
        item_id=item_id,
        inserted_at=item_id,
    )


QUERY = Constraints([0.3, 0.3], [0.7, 0.7])


class TestSelectContract:
    @pytest.mark.parametrize("strategy", default_strategy_suite(seed=1))
    def test_returns_a_candidate(self, strategy):
        items = [item([0.2, 0.2], [0.6, 0.6], 1), item([0.4, 0.4], [0.9, 0.9], 2)]
        assert strategy.select(QUERY, items) in items

    @pytest.mark.parametrize("strategy", default_strategy_suite(seed=1))
    def test_single_candidate(self, strategy):
        only = item([0.0, 0.0], [1.0, 1.0], 1)
        assert strategy.select(QUERY, [only]) is only

    @pytest.mark.parametrize("strategy", default_strategy_suite(seed=1))
    def test_empty_candidates_raise(self, strategy):
        with pytest.raises(ValueError):
            strategy.select(QUERY, [])


class TestRandom:
    def test_seeded_reproducibility(self):
        items = [item([0.1 * i, 0.1 * i], [1.0, 1.0], i) for i in range(5)]
        a = RandomStrategy(seed=7)
        b = RandomStrategy(seed=7)
        picks_a = [a.select(QUERY, items).item_id for _ in range(20)]
        picks_b = [b.select(QUERY, items).item_id for _ in range(20)]
        assert picks_a == picks_b

    def test_spreads_over_candidates(self):
        items = [item([0.1 * i, 0.1 * i], [1.0, 1.0], i) for i in range(5)]
        strategy = RandomStrategy(seed=3)
        picks = {strategy.select(QUERY, items).item_id for _ in range(100)}
        assert len(picks) == 5


class TestMaxOverlap:
    def test_prefers_largest_overlap(self):
        big = item([0.3, 0.3], [0.7, 0.7], 1)  # full overlap
        small = item([0.6, 0.6], [0.9, 0.9], 2)  # corner overlap
        assert MaxOverlap().select(QUERY, [small, big]) is big

    def test_sp_variant_prefers_stable_over_bigger_overlap(self):
        # unstable (its lower bounds are below the query's? No --
        # stability of item wrt query: stable iff query.lo <= item.lo).
        unstable_big = item([0.2, 0.2], [0.7, 0.7], 1)  # query.lo > item.lo
        stable_small = item([0.5, 0.5], [0.9, 0.9], 2)  # query.lo <= item.lo
        choice = MaxOverlapSP().select(QUERY, [unstable_big, stable_small])
        assert choice is stable_small
        # plain MaxOverlap would take the bigger overlap
        assert MaxOverlap().select(QUERY, [unstable_big, stable_small]) is unstable_big

    def test_sp_falls_back_to_overlap_among_stable(self):
        a = item([0.3, 0.3], [0.7, 0.7], 1)
        b = item([0.3, 0.3], [0.5, 0.5], 2)
        assert MaxOverlapSP().select(QUERY, [a, b]) is a


class TestPrioritized1D:
    def test_case_priority_order(self):
        # case b wrt query: item that the query shrinks from (upper down):
        # classify_change(item.constraints, QUERY)
        case_b = item([0.3, 0.3], [0.7, 0.8], 1)  # query lowers upper bound
        case_d = item([0.2, 0.3], [0.7, 0.7], 2)  # query raises a lower bound
        assert Prioritized1D().select(QUERY, [case_d, case_b]) is case_b

    def test_exact_match_beats_everything(self):
        exact = item([0.3, 0.3], [0.7, 0.7], 1)
        case_b = item([0.3, 0.3], [0.7, 0.8], 2)
        assert Prioritized1D().select(QUERY, [case_b, exact]) is exact

    def test_general_stable_beats_case_d(self):
        gen_stable = item([0.35, 0.35], [0.75, 0.75], 1)  # query widens lows
        case_d = item([0.25, 0.3], [0.7, 0.7], 2)
        assert Prioritized1D().select(QUERY, [case_d, gen_stable]) is gen_stable


class TestPrioritizedND:
    def test_std_prefers_pure_case_b_changes(self):
        std = PrioritizedND.std()
        # one case-b bound change (penalty 0) vs one case-d change (20)
        b_item = item([0.3, 0.3], [0.7, 0.8], 1)
        d_item = item([0.25, 0.3], [0.7, 0.7], 2)
        assert std.select(QUERY, [d_item, b_item]) is b_item

    def test_penalties_accumulate_across_dimensions(self):
        std = PrioritizedND.std()
        one_change = item([0.25, 0.3], [0.7, 0.7], 1)  # one case-d: 20
        many_b = item([0.3, 0.3], [0.9, 0.9], 2)  # two case-b: 0
        assert std.select(QUERY, [one_change, many_b]) is many_b

    def test_bad_weights_invert_preference(self):
        bad = PrioritizedND.bad()
        b_item = item([0.3, 0.3], [0.7, 0.8], 1)  # case b: penalty 50
        d_item = item([0.25, 0.3], [0.7, 0.7], 2)  # case d: penalty 0
        assert bad.select(QUERY, [d_item, b_item]) is d_item

    def test_names(self):
        assert PrioritizedND.std().name == "PrioritizedND(10,0,5,20)"
        assert PrioritizedND.bad().name == "PrioritizedND(10,50,30,0)"


class TestOptimumDistance:
    def test_prefers_closest_lower_corner(self):
        near = item([0.31, 0.31], [0.9, 0.9], 1)
        far = item([0.0, 0.0], [0.9, 0.9], 2)
        assert OptimumDistance().select(QUERY, [far, near]) is near


class TestIntegrationWithCache:
    def test_strategy_over_real_cache_candidates(self):
        cache = SkylineCache()
        for i, x in enumerate([0.1, 0.3, 0.5]):
            c = Constraints([x, x], [x + 0.4, x + 0.4])
            sky = np.array([[x + 0.05, x + 0.35], [x + 0.35, x + 0.05]])
            cache.insert(c, sky)
        candidates = cache.candidates(QUERY)
        assert candidates
        chosen = MaxOverlap().select(QUERY, candidates)
        best = max(
            candidates, key=lambda it: it.constraints.overlap_volume(QUERY)
        )
        assert chosen is best
