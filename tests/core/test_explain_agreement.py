"""Explain-vs-execute agreement: the plan must predict what query() does.

``CBCS.explain`` runs the same deterministic cache search, strategy
selection, and region computation as ``query`` -- so on any workload with a
deterministic strategy, the predicted case and range-query count must match
the execution exactly, for hits, misses, and the exact-match case alike.
This is the invariant the plan-accuracy audit (``repro.obs.audit``)
monitors; here it is pinned as a test on a seeded workload.
"""

import numpy as np
import pytest

from repro.core.ampr import ApproximateMPR, ExactMPR
from repro.core.cbcs import CBCS
from repro.data.generator import generate
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator


@pytest.mark.parametrize("region", [ApproximateMPR(k=1), ExactMPR()])
def test_plan_matches_execution_across_workload(region):
    data = generate("independent", 3000, 3, seed=11)
    engine = CBCS(DiskTable(data), region_computer=region)
    gen = WorkloadGenerator(data, seed=12)
    queries = gen.exploratory_stream(30)
    # verbatim repeats of already-cached queries force exact matches
    queries = queries + queries[:4]

    seen_cases = set()
    for constraints in queries:
        plan = engine.explain(constraints)
        outcome = engine.query(constraints)
        assert plan.case == outcome.case, (
            f"explain predicted case {plan.case!r}, query executed "
            f"{outcome.case!r} for {constraints}"
        )
        assert plan.range_queries == outcome.range_queries, (
            f"case {plan.case}: explain planned {plan.range_queries} range "
            f"queries, query issued {outcome.range_queries}"
        )
        assert plan.cache_hit == outcome.cache_hit
        seen_cases.add(outcome.case)

    # the workload must actually exercise all three top-level shapes
    assert "miss" in seen_cases
    assert "exact" in seen_cases
    assert seen_cases - {"miss", "exact"}, "no cache-hit refinement executed"


def test_exact_match_predicts_zero_io():
    data = generate("independent", 1000, 2, seed=5)
    engine = CBCS(DiskTable(data))
    gen = WorkloadGenerator(data, seed=6)
    first = gen.initial_query()
    engine.query(first)
    plan = engine.explain(first)
    outcome = engine.query(first)
    assert plan.case == outcome.case == "exact"
    assert plan.range_queries == outcome.range_queries == 0
    assert outcome.points_read == 0


def test_miss_prediction_bounds_actual_reads():
    data = generate("independent", 2000, 3, seed=7)
    engine = CBCS(DiskTable(data))
    gen = WorkloadGenerator(data, seed=8)
    constraints = gen.initial_query()
    plan = engine.explain(constraints)
    outcome = engine.query(constraints)
    assert plan.case == outcome.case == "miss"
    assert plan.range_queries == outcome.range_queries == 1
    # most-selective-dimension estimate is an upper bound on rows in the box
    assert outcome.points_read <= plan.estimated_points


def test_plan_to_dict_is_strict_json():
    import json

    data = generate("independent", 500, 2, seed=1)
    engine = CBCS(DiskTable(data))
    gen = WorkloadGenerator(data, seed=2)
    q = gen.initial_query()
    engine.query(q)
    plan = engine.explain(gen.refine(q))
    payload = plan.to_dict()
    json.dumps(payload, allow_nan=False)
    assert payload["case"] == plan.case
    assert len(payload["boxes"]) == plan.range_queries
    for box in payload["boxes"]:
        for iv in box["intervals"]:
            assert set(iv) == {"lo", "hi", "lo_open", "hi_open"}
