"""Tests for :mod:`repro.core.shardplan` (shard pruning + plan cache)."""

import numpy as np
import pytest

from repro.core.shardplan import (
    DECISION_DISJOINT,
    DECISION_DOMINATED,
    DECISION_SURVIVING,
    PruningSetCache,
    ShardDecision,
    prune_shards,
)
from repro.geometry.constraints import Constraints
from repro.skyline.reference import brute_force_skyline
from repro.storage.sharding import ShardedTable


def summary(shard_id, lo, hi, count=10):
    from repro.storage.sharding import ShardSummary

    return ShardSummary(
        shard_id=shard_id,
        mbr_lo=np.asarray(lo, dtype=float),
        mbr_hi=np.asarray(hi, dtype=float),
        count=count,
    )


class TestPruneShards:
    def test_empty_shard_is_disjoint(self):
        s = summary(0, [0, 0], [0, 0], count=0)
        (d,) = prune_shards([s], Constraints([0, 0], [1, 1]))
        assert d.decision == DECISION_DISJOINT
        assert d.reason == "empty-shard"
        assert d.pruned

    def test_mbr_outside_region_is_disjoint(self):
        s = summary(0, [0.8, 0.0], [0.9, 0.2])
        (d,) = prune_shards([s], Constraints([0.0, 0.0], [0.5, 1.0]))
        assert d.decision == DECISION_DISJOINT
        assert d.reason == "mbr-disjoint-dim0"

    def test_inside_region_survives(self):
        s = summary(0, [0.1, 0.1], [0.4, 0.4])
        (d,) = prune_shards([s], Constraints([0.0, 0.0], [1.0, 1.0]))
        assert d.decision == DECISION_SURVIVING
        assert d.reason == "in-region"
        assert not d.pruned

    def test_dominated_shard_is_pruned(self):
        # Shard 0 sits strictly below-left of shard 1's region corner:
        # every point of shard 1 is dominated by shard 0's MBR top corner.
        a = summary(0, [0.1, 0.1], [0.2, 0.2])
        b = summary(1, [0.5, 0.5], [0.9, 0.9])
        decisions = prune_shards([a, b], Constraints([0.0, 0.0], [1.0, 1.0]))
        assert decisions[0].decision == DECISION_SURVIVING
        assert decisions[1].decision == DECISION_DOMINATED
        assert decisions[1].reason == "dominated-by-shard0"

    def test_domination_requires_dominator_inside_region(self):
        # Shard 0's MBR pokes below the constraint floor: its corner is no
        # longer a witness point inside the region, so it must not prune.
        a = summary(0, [-0.5, 0.1], [0.2, 0.2])
        b = summary(1, [0.5, 0.5], [0.9, 0.9])
        decisions = prune_shards([a, b], Constraints([0.0, 0.0], [1.0, 1.0]))
        assert decisions[1].decision == DECISION_SURVIVING

    def test_partial_overlap_survives(self):
        s = summary(0, [0.4, 0.4], [0.8, 0.8])
        (d,) = prune_shards([s], Constraints([0.5, 0.5], [1.0, 1.0]))
        assert d.decision == DECISION_SURVIVING

    def test_decisions_in_shard_id_order(self):
        shards = [summary(i, [0.1 * i] * 2, [0.1 * i + 0.05] * 2) for i in range(5)]
        decisions = prune_shards(shards, Constraints([0, 0], [1, 1]))
        assert [d.shard_id for d in decisions] == [0, 1, 2, 3, 4]

    def test_as_dict(self):
        d = ShardDecision(3, DECISION_DISJOINT, "empty-shard")
        assert d.as_dict() == {
            "shard_id": 3,
            "decision": "disjoint",
            "reason": "empty-shard",
        }

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_pruning_is_safe(self, seed, n_shards):
        """Pruned shards never hold a point of the constrained skyline."""
        rng = np.random.default_rng(seed)
        data = rng.uniform(0, 1, size=(600, 3))
        table = ShardedTable(data, n_shards, mode="range", key_dim=0)
        for _ in range(20):
            bounds = np.sort(rng.uniform(0, 1, size=(2, 3)), axis=0)
            constraints = Constraints(bounds[0], bounds[1])
            inside = data[constraints.satisfied_mask(data)]
            skyline = inside[brute_force_skyline(inside)]
            decisions = prune_shards(table.summaries, constraints)
            surviving = np.zeros((0, 3))
            for d, shard in zip(decisions, table):
                if d.decision == DECISION_SURVIVING:
                    view = shard.table.data_view()
                    surviving = np.vstack([surviving, view])
            # Every skyline point must live in a surviving shard.
            for point in skyline:
                assert any(
                    np.allclose(point, row) for row in surviving
                ), f"skyline point lost by pruning: {point}"


class TestPruningSetCache:
    def c(self, lo=0.0, hi=1.0):
        return Constraints([lo, lo], [hi, hi])

    def test_miss_then_hit(self):
        cache = PruningSetCache()
        assert cache.lookup(self.c()) is None
        cache.store(self.c(), [ShardDecision(0, DECISION_SURVIVING, "in-region")])
        got = cache.lookup(self.c())
        assert got is not None and got[0].shard_id == 0
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = PruningSetCache(capacity=2)
        a, b, x = self.c(0.0, 0.1), self.c(0.0, 0.2), self.c(0.0, 0.3)
        cache.store(a, [])
        cache.store(b, [])
        cache.lookup(a)  # refresh a; b becomes LRU
        cache.store(x, [])
        assert cache.lookup(a) is not None
        assert cache.lookup(b) is None
        assert len(cache) == 2

    def test_invalidate_clears_everything(self):
        cache = PruningSetCache()
        cache.store(self.c(), [])
        cache.invalidate()
        assert len(cache) == 0
        assert cache.lookup(self.c()) is None
        assert cache.invalidations == 1

    def test_invalidate_empty_cache_not_counted(self):
        cache = PruningSetCache()
        cache.invalidate()
        assert cache.invalidations == 0

    def test_stats(self):
        cache = PruningSetCache(capacity=8)
        cache.store(self.c(), [])
        cache.lookup(self.c())
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["capacity"] == 8
        assert stats["hits"] == 1
        assert stats["hit_rate"] == 1.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PruningSetCache(capacity=0)
