"""Tests for the multi-item extension (paper Section 6.3 future work)."""

import numpy as np
import pytest

from repro.core.cbcs import CBCS
from repro.core.multi import MultiItemMPR
from repro.data.generator import generate
from repro.geometry.box import pairwise_disjoint, union_mask
from repro.geometry.constraints import Constraints
from repro.skyline.sfs import sfs_skyline
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

from tests.core.conftest import (
    assert_same_point_set,
    constrained_skyline_oracle,
    random_constraints,
)


def item_for(data, constraints):
    inside = data[constraints.satisfied_mask(data)]
    return constraints, inside[sfs_skyline(inside)]


def solve(mpr, data):
    fetched = data[union_mask(mpr.boxes, data)]
    pool = np.vstack([mpr.surviving, fetched]) if len(mpr.surviving) else fetched
    if len(pool) == 0:
        return pool
    return pool[sfs_skyline(pool)]


class TestValidation:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MultiItemMPR(k=0)
        with pytest.raises(ValueError):
            MultiItemMPR(max_items=0)
        with pytest.raises(ValueError):
            MultiItemMPR(max_pieces=0)

    def test_requires_items(self):
        with pytest.raises(ValueError):
            MultiItemMPR().compute_multi([], Constraints([0, 0], [1, 1]))

    def test_name(self):
        assert MultiItemMPR(k=2, max_items=4).name == "multiMPR(4x2NN)"


class TestCompleteness:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("n_items", [1, 2, 3])
    def test_random_item_sets(self, seed, n_items):
        rng = np.random.default_rng(seed)
        data = generate("independent", 250, 3, seed=seed)
        items = [item_for(data, random_constraints(rng, 3)) for _ in range(n_items)]
        new = random_constraints(rng, 3)
        mpr = MultiItemMPR(k=2, max_items=n_items).compute_multi(items, new)
        assert pairwise_disjoint(mpr.boxes)
        assert_same_point_set(
            solve(mpr, data),
            constrained_skyline_oracle(data, new),
            context=f"seed={seed} items={n_items}",
        )

    def test_duplicate_rows_across_items(self):
        """Two items caching the same duplicated skyline rows must not
        double-count them in the merged pool."""
        base = generate("independent", 150, 2, seed=4)
        data = np.vstack([base, base[:40]])
        c1 = Constraints([0.0, 0.0], [0.7, 0.9])
        c2 = Constraints([0.0, 0.0], [0.9, 0.7])
        items = [item_for(data, c1), item_for(data, c2)]
        new = Constraints([0.0, 0.0], [0.8, 0.8])
        mpr = MultiItemMPR(k=3, max_items=2).compute_multi(items, new)
        assert_same_point_set(solve(mpr, data), constrained_skyline_oracle(data, new))

    def test_unstable_items(self):
        rng = np.random.default_rng(11)
        data = generate("independent", 300, 2, seed=11)
        c1 = Constraints([0.0, 0.0], [0.8, 0.8])
        c2 = Constraints([0.1, 0.1], [0.9, 0.9])
        items = [item_for(data, c1), item_for(data, c2)]
        # raising lower bounds expels dominators from both items
        new = Constraints([0.3, 0.2], [0.85, 0.85])
        mpr = MultiItemMPR(k=1, max_items=2).compute_multi(items, new)
        assert not mpr.stable
        assert_same_point_set(solve(mpr, data), constrained_skyline_oracle(data, new))

    def test_single_item_matches_compute(self):
        data = generate("independent", 200, 2, seed=5)
        c = Constraints([0.1, 0.1], [0.8, 0.8])
        old, sky = item_for(data, c)
        new = Constraints([0.1, 0.1], [0.9, 0.8])
        computer = MultiItemMPR(k=2)
        a = computer.compute(old, sky, new)
        b = computer.compute_multi([(old, sky)], new)
        assert len(a.boxes) == len(b.boxes)


class TestSecondItemHelps:
    def test_two_items_cover_more_than_one(self):
        """A query straddling two cached regions fetches less with both."""
        data = generate("independent", 2000, 2, seed=9)
        left = item_for(data, Constraints([0.0, 0.0], [0.5, 1.0]))
        right = item_for(data, Constraints([0.5, 0.0], [1.0, 1.0]))
        new = Constraints([0.2, 0.0], [0.8, 1.0])
        single = MultiItemMPR(k=3, max_items=1).compute_multi([left, right], new)
        both = MultiItemMPR(k=3, max_items=2).compute_multi([left, right], new)
        covered_single = int(union_mask(single.boxes, data).sum())
        covered_both = int(union_mask(both.boxes, data).sum())
        assert covered_both <= covered_single
        assert covered_both < len(data[new.satisfied_mask(data)])
        assert_same_point_set(solve(both, data), constrained_skyline_oracle(data, new))


class TestEngineIntegration:
    def test_cbcs_with_multi_region(self):
        data = generate("independent", 1500, 3, seed=21)
        table = DiskTable(data)
        engine = CBCS(table, region_computer=MultiItemMPR(k=2, max_items=3))
        gen = WorkloadGenerator(data, seed=8)
        for i, c in enumerate(gen.exploratory_stream(30)):
            out = engine.query(c)
            assert_same_point_set(
                out.skyline,
                constrained_skyline_oracle(data, c),
                context=f"query#{i} case={out.case}",
            )

    def test_multi_item_engine_on_independent_queries(self):
        data = generate("independent", 1200, 2, seed=31)
        engine = CBCS(
            DiskTable(data), region_computer=MultiItemMPR(k=1, max_items=2)
        )
        gen = WorkloadGenerator(data, seed=13)
        engine.warm(gen.independent_queries(25))
        for c in gen.independent_queries(15):
            out = engine.query(c)
            assert_same_point_set(
                out.skyline, constrained_skyline_oracle(data, c)
            )
