"""Cache persistence backends: memory no-op parity, disk warm restart,
corrupt-snapshot policies, checksum round trips, quarantine-log bounds."""

import numpy as np
import pytest

from repro.core.cache import CorruptCacheError, SkylineCache
from repro.core.cache_backend import DiskCacheBackend, MemoryCacheBackend
from repro.geometry.constraints import Constraints
from repro.obs.metrics import MetricsRegistry


def _box(lo, hi, d=3):
    return Constraints([lo] * d, [hi] * d)


def _skyline(seed, n=4, d=3):
    return np.random.default_rng(seed).random((n, d))


def _fill(cache, n=5):
    items = []
    for i in range(n):
        items.append(
            cache.insert(_box(0.1 * i, 0.1 * i + 0.5), _skyline(i))
        )
    return items


def _state(cache):
    return sorted(
        (
            tuple(item.constraints.lo),
            tuple(item.constraints.hi),
            item.skyline.tobytes(),
        )
        for item in cache
    )


class TestMemoryBackend:
    def test_default_backend_is_memory(self):
        cache = SkylineCache()
        assert isinstance(cache.backend, MemoryCacheBackend)

    def test_memory_backend_is_bit_identical_to_default(self):
        plain = SkylineCache()
        backed = SkylineCache(backend=MemoryCacheBackend())
        _fill(plain)
        _fill(backed)
        plain.remove(next(iter(plain)))
        backed.remove(next(iter(backed)))
        assert _state(plain) == _state(backed)
        assert (plain.hits, plain.misses, plain.insertions) == (
            backed.hits, backed.misses, backed.insertions
        )
        backed.close()  # no-op, no files anywhere


class TestDiskWarmRestart:
    def test_restart_from_snapshot(self, tmp_path):
        cache = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        _fill(cache)
        cache.close()  # final checkpoint -> snapshot

        warm = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        assert warm.backend.restored_from == "snapshot"
        assert warm.backend.restored_items == 5
        assert _state(warm) == _state(cache)
        warm.close()

    def test_restart_from_wal_only(self, tmp_path):
        cache = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        _fill(cache, n=3)
        cache.backend.wal.close()  # abandon without checkpoint

        warm = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        assert warm.backend.restored_from == "wal"
        assert _state(warm) == _state(cache)
        warm.close()

    def test_restart_from_snapshot_plus_wal_tail(self, tmp_path):
        cache = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        _fill(cache, n=3)
        cache.checkpoint()
        cache.insert(_box(0.8, 0.95), _skyline(99))  # journaled, unsnapshotted
        cache.backend.wal.close()

        warm = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        assert warm.backend.restored_from == "snapshot+wal"
        assert _state(warm) == _state(cache)
        warm.close()

    def test_replay_covers_del_and_clear(self, tmp_path):
        cache = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        items = _fill(cache, n=3)
        cache.remove(items[1])
        cache.backend.wal.close()
        warm = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        assert _state(warm) == _state(cache)
        warm.clear()
        warm.backend.wal.close()
        colder = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        assert len(colder) == 0
        colder.close()

    def test_fresh_directory_is_cold(self, tmp_path):
        cache = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        assert cache.backend.restored_from == "cold"
        assert cache.backend.restored_items == 0
        cache.close()

    def test_restored_item_metadata_survives(self, tmp_path):
        cache = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        item = cache.insert(_box(0.0, 0.5), _skyline(1))
        cache.candidates(_box(0.1, 0.4))  # bump use_count/last_used
        use_count = item.use_count
        cache.close()
        warm = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        (restored,) = list(warm)
        assert restored.use_count == use_count
        warm.close()

    def test_auto_checkpoint_bounds_wal(self, tmp_path):
        metrics = MetricsRegistry()
        cache = SkylineCache(
            backend=DiskCacheBackend(
                tmp_path, fsync=False, checkpoint_every=2, metrics=metrics
            )
        )
        _fill(cache, n=5)
        assert metrics.counter_value("cache_checkpoints_total") >= 2
        assert (tmp_path / "snapshot.npz").exists()
        cache.close()

    def test_backend_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCacheBackend(tmp_path, checkpoint_every=0)
        with pytest.raises(ValueError):
            DiskCacheBackend(tmp_path, on_corrupt="shrug")


class TestCorruptSnapshot:
    def _corrupt_snapshot(self, tmp_path):
        path = tmp_path / "snapshot.npz"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

    def test_cold_policy_starts_empty_and_counts(self, tmp_path):
        cache = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        _fill(cache)
        cache.close()
        self._corrupt_snapshot(tmp_path)

        metrics = MetricsRegistry()
        warm = SkylineCache(
            backend=DiskCacheBackend(
                tmp_path, fsync=False, checkpoint_every=None, metrics=metrics
            )
        )
        assert warm.backend.restored_from == "cold"
        assert len(warm) == 0
        assert metrics.counter_value("cache_restore_corrupt_total") == 1
        # The cache keeps working and re-persists cleanly.
        warm.insert(_box(0.2, 0.7), _skyline(5))
        warm.close()
        again = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        assert len(again) == 1
        again.close()

    def test_raise_policy_propagates(self, tmp_path):
        cache = SkylineCache(
            backend=DiskCacheBackend(tmp_path, fsync=False, checkpoint_every=None)
        )
        _fill(cache)
        cache.close()
        self._corrupt_snapshot(tmp_path)
        with pytest.raises(CorruptCacheError):
            SkylineCache(
                backend=DiskCacheBackend(
                    tmp_path, fsync=False, checkpoint_every=None,
                    on_corrupt="raise",
                )
            )


class TestChecksumRoundTrip:
    def test_bit_flips_never_load_wrong_data(self, tmp_path):
        """S2: save -> flip one byte -> load either raises the typed
        :class:`CorruptCacheError` (never a raw zipfile/numpy/KeyError) or
        -- when the flip lands in an ignorable zip header field like a
        timestamp -- still round-trips the exact original payload.  What
        must never happen is silently loading *different* data."""
        cache = SkylineCache()
        _fill(cache)
        path = tmp_path / "cache.npz"
        cache.save(path)
        blob = path.read_bytes()
        expected = _state(cache)

        # Sanity: the pristine payload round-trips.
        assert _state(SkylineCache.load(path)) == expected

        detected = 0
        for offset in range(0, len(blob), max(1, len(blob) // 97)):
            flipped = bytearray(blob)
            flipped[offset] ^= 0xFF
            path.write_bytes(bytes(flipped))
            try:
                restored = SkylineCache.load(path)
            except CorruptCacheError:
                detected += 1
            else:
                assert _state(restored) == expected, (
                    f"flip at byte {offset} silently loaded wrong data"
                )
        # The overwhelming majority of flips hit checksummed payload.
        assert detected > 50

    def test_truncated_file_raises_corrupt_cache_error(self, tmp_path):
        cache = SkylineCache()
        _fill(cache, n=2)
        path = tmp_path / "cache.npz"
        cache.save(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CorruptCacheError):
            SkylineCache.load(path)
        fresh = SkylineCache()
        with pytest.raises(CorruptCacheError):
            fresh.load_into(path)


class TestQuarantineLogBounds:
    def test_ring_buffer_caps_and_counts_drops(self):
        """S3: the quarantine log is bounded; overflow drops the oldest
        event and increments the dropped counter + metric."""
        metrics = MetricsRegistry()
        cache = SkylineCache(metrics=metrics, quarantine_log_cap=3)
        items = _fill(cache, n=5)
        for item in items:
            cache.quarantine(item, reason="test-overflow")
        assert len(cache.quarantine_log) == 3
        assert cache.quarantine_log_dropped == 2
        assert (
            metrics.counter_value("cache_quarantine_log_dropped_total") == 2
        )
        # The survivors are the newest events.
        logged_ids = [event["item_id"] for event in cache.quarantine_log]
        assert logged_ids == [items[2].item_id, items[3].item_id, items[4].item_id]

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            SkylineCache(quarantine_log_cap=0)
