"""Tests for resilient CBCS: retries, the degradation ladder, and the
never-raise / never-silently-wrong contract under storage faults."""

import numpy as np
import pytest

from repro.core.ampr import ExactMPR
from repro.core.cbcs import CBCS
from repro.data.generator import independent
from repro.geometry.constraints import Constraints
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.resilience import CircuitBreaker, Resilience, RetryPolicy
from repro.skyline.sfs import sfs_skyline
from repro.storage.faults import (
    FaultInjector,
    FaultProfile,
    FaultyDiskTable,
)
from repro.storage.table import DiskTable


def reference(data, constraints):
    region = data[constraints.satisfied_mask(data)]
    return region[sfs_skyline(region)] if len(region) else region


def same_multiset(a, b):
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        return False
    if len(a) == 0:
        return True
    return np.array_equal(a[np.lexsort(a.T[::-1])], b[np.lexsort(b.T[::-1])])


@pytest.fixture
def data():
    return independent(400, 2, seed=1)


def make_engine(data, profile, seed=0, resilience=True, **cbcs_kwargs):
    injector = FaultInjector(profile, seed=seed)
    table = FaultyDiskTable(DiskTable(data), injector)
    return CBCS(table, resilience=resilience, **cbcs_kwargs), injector


class TestRetriesOnTransientFaults:
    def test_transient_faults_retried_to_exact_answer(self, data):
        engine, _ = make_engine(data, FaultProfile(transient_io=0.4), seed=5)
        c = Constraints([0.1, 0.1], [0.8, 0.8])
        outcome = engine.query(c)
        assert outcome.degraded is None
        assert same_multiset(outcome.skyline, reference(data, c))
        # At 40% fault rate the first queries are bound to retry.
        total = sum(engine.query(
            Constraints([0.05 * i, 0.05], [0.05 * i + 0.4, 0.6])
        ).retries for i in range(8))
        assert total > 0

    def test_corruption_and_truncation_never_silently_wrong(self, data):
        engine, _ = make_engine(
            data, FaultProfile(truncate=0.25, corrupt=0.25), seed=3
        )
        for i in range(12):
            c = Constraints([0.04 * i, 0.1], [0.04 * i + 0.5, 0.9])
            outcome = engine.query(c)
            if outcome.degraded in (None, "ampr", "bounding"):
                assert same_multiset(outcome.skyline, reference(data, c))
            else:
                assert outcome.stale

    def test_resilience_off_raises(self, data):
        engine, _ = make_engine(
            data, FaultProfile(transient_io=1.0), resilience=None
        )
        with pytest.raises(IOError):
            engine.query(Constraints([0.1, 0.1], [0.8, 0.8]))


class TestDegradationLadder:
    def outage_engine(self, data, **kwargs):
        engine, injector = make_engine(data, "none", **kwargs)
        injector.force_outage(10_000)
        return engine, injector

    def test_total_outage_empty_cache_serves_unavailable(self, data):
        engine, _ = self.outage_engine(data)
        outcome = engine.query(Constraints([0.1, 0.1], [0.8, 0.8]))
        assert outcome.degraded == "unavailable"
        assert outcome.stale
        assert outcome.skyline_size == 0

    def test_outage_with_cache_serves_stale_subset(self, data):
        engine, injector = self.outage_engine(data)
        injector.clear_outage()
        wide = Constraints([0.0, 0.0], [0.9, 0.9])
        warm = engine.query(wide)
        injector.force_outage(10_000)
        narrow = Constraints([0.05, 0.05], [0.6, 0.6])
        outcome = engine.query(narrow)
        assert outcome.degraded == "stale"
        assert outcome.stale
        # Served points are the cached skyline filtered to the query region.
        assert narrow.satisfied_mask(outcome.skyline).all()
        served = {tuple(p) for p in outcome.skyline}
        assert served <= {tuple(p) for p in warm.skyline}

    def test_ampr_rung_used_for_exact_mpr_engine(self, data):
        # Transient faults on every MPR box fetch, exhausted retries, then
        # the aMPR re-plan answers (still exactly) on the fallback rung.
        policy = RetryPolicy(max_attempts=2, deadline_ms=10_000.0)
        engine, injector = make_engine(
            data,
            "none",
            region_computer=ExactMPR(),
            resilience=Resilience(policy=policy),
        )
        wide = Constraints([0.0, 0.0], [0.9, 0.9])
        engine.query(wide)
        injector.force_outage(2)  # fails both attempts of the exact plan
        narrow = Constraints([0.05, 0.05], [0.6, 0.6])
        outcome = engine.query(narrow)
        assert outcome.degraded == "ampr"
        assert not outcome.stale
        assert same_multiset(outcome.skyline, reference(data, narrow))

    def test_bounding_rung_still_exact(self, data):
        # aMPR engine has no fallback region: retries exhausted -> bounding.
        policy = RetryPolicy(max_attempts=2, deadline_ms=10_000.0)
        engine, injector = make_engine(
            data, "none", resilience=Resilience(policy=policy)
        )
        wide = Constraints([0.0, 0.0], [0.9, 0.9])
        engine.query(wide)
        injector.force_outage(2)
        narrow = Constraints([0.05, 0.05], [0.6, 0.6])
        outcome = engine.query(narrow)
        assert outcome.degraded == "bounding"
        assert not outcome.stale
        assert same_multiset(outcome.skyline, reference(data, narrow))

    def test_breaker_open_skips_storage_and_degrades(self, data):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=1000)
        engine, injector = make_engine(
            data, "none", resilience=Resilience(breaker=breaker)
        )
        injector.force_outage(10_000)
        engine.query(Constraints([0.1, 0.1], [0.8, 0.8]))
        assert breaker.state == "open"
        calls_before = injector.calls
        outcome = engine.query(Constraints([0.2, 0.2], [0.7, 0.7]))
        assert outcome.degraded is not None
        assert injector.calls == calls_before  # rejected before storage


class TestOutcomeAccounting:
    def test_degraded_and_stale_metrics_recorded(self, data):
        obs = Observability(metrics=MetricsRegistry(), tracer=Tracer())
        injector = FaultInjector("none", seed=0)
        table = FaultyDiskTable(DiskTable(data), injector)
        engine = CBCS(table, obs=obs, resilience=True)
        injector.force_outage(10_000)
        engine.query(Constraints([0.1, 0.1], [0.8, 0.8]))
        m = obs.metrics
        assert (
            m.counter_value(
                "degraded_queries_total", method=engine.name, rung="unavailable"
            )
            == 1
        )
        assert m.counter_value("stale_serves_total", method=engine.name) == 1
        assert m.counter_value("degradation_entered_total", method=engine.name) == 1

    def test_outcome_records_carry_new_fields(self, data):
        engine, _ = make_engine(data, "none")
        record = engine.query(Constraints([0.1, 0.1], [0.8, 0.8])).as_record()
        assert record["degraded"] is None
        assert record["stale"] is False
        assert record["retries"] == 0
