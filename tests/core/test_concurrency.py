"""Concurrent-executor tests: parallel fetches must change only latency.

The acceptance contract of the planner/executor split: with ``workers=4``
the engine returns bit-identical skylines and identical ``points_read`` /
``range_queries`` counters to the serial engine on the quick experiment
set, and under a latency-spike fault profile the effective fetch latency
(``fetch_io_ms``) is measurably lower than serial while the aggregate disk
work (``io_ms_total``) stays the same.
"""

import numpy as np
import pytest

from repro.core.ampr import ExactMPR
from repro.core.cbcs import CBCS
from repro.core.executor import Executor, effective_latency_ms
from repro.data.generator import independent
from repro.geometry.constraints import Constraints
from repro.storage.faults import FaultInjector, FaultProfile, FaultyDiskTable
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def data():
    return independent(2_000, 3, seed=42)


def quick_queries(data, n=30):
    gen = WorkloadGenerator(data, seed=9)
    return list(gen.exploratory_stream(n // 2)) + list(
        gen.independent_queries(n - n // 2)
    )


def make_engine(data, workers, region=None):
    return CBCS(
        DiskTable(data), region_computer=region, workers=workers
    )


QUADRANTS = [
    Constraints([0.0, 0.0, 0.0], [0.5, 0.5, 1.0]).region(),
    Constraints([0.5, 0.0, 0.0], [1.0, 0.5, 1.0]).region(),
    Constraints([0.0, 0.5, 0.0], [0.5, 1.0, 1.0]).region(),
    Constraints([0.5, 0.5, 0.0], [1.0, 1.0, 1.0]).region(),
]


class TestBitIdenticalAnswers:
    @pytest.mark.parametrize("region", [None, ExactMPR()])
    def test_workers_4_matches_serial_on_quick_set(self, data, region):
        serial = make_engine(data, workers=1, region=region)
        parallel = make_engine(
            data, workers=4, region=type(region)() if region else None
        )
        try:
            for c in quick_queries(data):
                a = serial.query(c)
                b = parallel.query(c)
                assert a.skyline.tobytes() == b.skyline.tobytes()
                assert a.points_read == b.points_read
                assert a.range_queries == b.range_queries
                assert a.io.as_dict() == b.io.as_dict()
                assert (a.case, a.stable, a.cache_hit) == (
                    b.case,
                    b.stable,
                    b.cache_hit,
                )
        finally:
            parallel.close()

    def test_serial_engine_timings_unchanged_shape(self, data):
        engine = make_engine(data, workers=1)
        outcome = engine.query(Constraints([0.1] * 3, [0.9] * 3))
        # serial: the Figure-10 fetching stage equals the aggregate I/O
        assert outcome.timings.fetch_io_ms == outcome.timings.io_ms_total
        assert outcome.timings.io_ms_total == pytest.approx(
            outcome.io.simulated_io_ms
        )


class TestExecutorMerging:
    def test_parallel_merge_matches_serial_fetch(self, data):
        table = DiskTable(data)
        reference = DiskTable(data)
        parallel = Executor(workers=4)
        try:
            outcome = parallel.fetch(table, QUADRANTS)
        finally:
            parallel.close()
        expected = reference.fetch_boxes(QUADRANTS)
        assert outcome.result.points.tobytes() == expected.points.tobytes()
        assert np.array_equal(outcome.result.rowids, expected.rowids)
        assert table.stats.range_queries == reference.stats.range_queries
        assert table.stats.points_read == reference.stats.points_read

    def test_empty_plan_is_free(self, data):
        table = DiskTable(data)
        outcome = Executor(workers=1).fetch(table, [])
        assert len(outcome.result) == 0
        assert outcome.io_ms_total == 0.0
        assert table.stats.range_queries == 0


class TestEffectiveLatency:
    def test_greedy_makespan(self):
        # lanes fill greedily: (4 then 1) and (3 then 2) -> makespan 5
        assert effective_latency_ms([4.0, 3.0, 2.0, 1.0], workers=2) == 5.0
        assert effective_latency_ms([5.0, 1.0, 1.0, 1.0], workers=2) == 5.0
        assert effective_latency_ms([2.0, 2.0], workers=1) == 4.0
        assert effective_latency_ms([], workers=4) == 0.0

    def test_latency_spikes_overlap_under_parallel_fetch(self, data):
        profile = FaultProfile(latency=1.0, latency_ms=10.0)

        def spiky_table():
            return FaultyDiskTable(
                DiskTable(data), FaultInjector(profile, seed=0)
            )

        serial = Executor(workers=1).fetch(spiky_table(), QUADRANTS)
        parallel_exec = Executor(workers=4)
        try:
            parallel = parallel_exec.fetch(spiky_table(), QUADRANTS)
        finally:
            parallel_exec.close()
        # same total disk work, strictly lower effective latency
        assert parallel.io_ms_total == pytest.approx(serial.io_ms_total)
        assert serial.effective_io_ms == pytest.approx(serial.io_ms_total)
        assert parallel.effective_io_ms < 0.5 * serial.effective_io_ms
        assert (
            parallel.result.points.tobytes() == serial.result.points.tobytes()
        )

    def test_engine_fetch_stage_drops_under_latency_faults(self, data):
        profile = FaultProfile(latency=1.0, latency_ms=10.0)

        def make(workers):
            table = FaultyDiskTable(
                DiskTable(data), FaultInjector(profile, seed=0)
            )
            return CBCS(table, region_computer=ExactMPR(), workers=workers)

        base = Constraints([0.2] * 3, [0.7] * 3)
        # widen two bounds: a general refinement decomposed into >= 2 boxes
        refined = Constraints([0.15] * 3, [0.75] * 3)

        serial, parallel = make(1), make(4)
        try:
            s_warm, p_warm = serial.query(base), parallel.query(base)
            assert s_warm.skyline.tobytes() == p_warm.skyline.tobytes()
            s, p = serial.query(refined), parallel.query(refined)
        finally:
            parallel.close()
        assert s.skyline.tobytes() == p.skyline.tobytes()
        assert s.range_queries == p.range_queries
        assert s.range_queries >= 2  # the plan actually fanned out
        assert p.timings.io_ms_total == pytest.approx(s.timings.io_ms_total)
        assert p.timings.fetch_io_ms < s.timings.fetch_io_ms
