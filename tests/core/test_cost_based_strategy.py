"""Tests for the cost-based cache search strategy (extension)."""

import numpy as np
import pytest

from repro.core.ampr import ApproximateMPR
from repro.core.cbcs import CBCS
from repro.core.cache import SkylineCache
from repro.core.strategies import CostBased, MaxOverlap
from repro.data.generator import generate
from repro.geometry.constraints import Constraints
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

from tests.core.conftest import assert_same_point_set, constrained_skyline_oracle


@pytest.fixture()
def setting():
    data = generate("independent", 3000, 2, seed=51)
    table = DiskTable(data)
    region = ApproximateMPR(1)
    return data, table, region


class TestSelection:
    def test_validation(self, setting):
        _, table, region = setting
        with pytest.raises(ValueError):
            CostBased(table, region, max_candidates=0)
        with pytest.raises(ValueError):
            CostBased(table, region).select(Constraints([0, 0], [1, 1]), [])

    def test_prefers_cheaper_plan_over_bigger_overlap(self, setting):
        """An item whose MPR needs almost nothing beats one with more raw
        overlap but an expensive fetch."""
        data, table, region = setting
        cache = SkylineCache()

        def cached(c):
            inside = data[c.satisfied_mask(data)]
            from repro.skyline.sfs import sfs_skyline

            return cache.insert(c, inside[sfs_skyline(inside)])

        query = Constraints([0.1, 0.1], [0.6, 0.6])
        # superset item: query is a pure shrink -> empty MPR, zero cost
        superset = cached(Constraints([0.05, 0.05], [0.7, 0.7]))
        # bigger-overlap-but-unstable item: query raises its lower bounds
        cached(Constraints([0.0, 0.0], [0.6, 0.6]))

        choice = CostBased(table, region).select(query, list(cache))
        assert choice is superset

    def test_engine_equivalence(self, setting):
        data, table, region = setting
        engine = CBCS(
            table,
            strategy=CostBased(table, region),
            region_computer=region,
        )
        gen = WorkloadGenerator(data, seed=52)
        for c in gen.exploratory_stream(25):
            out = engine.query(c)
            assert_same_point_set(
                out.skyline, constrained_skyline_oracle(data, c)
            )

    def test_never_costs_more_points_than_max_overlap(self, setting):
        """Across a workload, the cost-based pick reads no more than the
        MaxOverlap pick on average (it optimizes that quantity directly)."""
        data, _, _ = setting
        totals = {}
        for name, strategy_factory in [
            ("cost", lambda t: CostBased(t, ApproximateMPR(1))),
            ("overlap", lambda t: MaxOverlap()),
        ]:
            table = DiskTable(data)
            engine = CBCS(
                table,
                strategy=strategy_factory(table),
                region_computer=ApproximateMPR(1),
            )
            gen = WorkloadGenerator(data, seed=53)
            engine.warm(gen.independent_queries(30))
            outs = [engine.query(c) for c in gen.independent_queries(20)]
            totals[name] = sum(o.points_read for o in outs)
        assert totals["cost"] <= totals["overlap"] * 1.1
