"""Thread-safety tests for :class:`repro.core.cache.SkylineCache`.

The cache is shared by every concurrent query path (executor workers,
:class:`repro.service.QueryService` threads), so insert/lookup/evict/
verify_and_heal must interleave from many threads without losing entries,
racing quarantines, or desyncing the R*-tree index.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.cache import SkylineCache
from repro.geometry.constraints import Constraints

N_THREADS = 8
PER_THREAD = 25

EVERYTHING = Constraints([0.0, 0.0], [200.0, 200.0])


def item_constraints(tid, i):
    """A distinct, non-degenerate constraint region per (thread, slot)."""
    x = float(tid) + i * 0.03
    return Constraints([x, x], [x + 0.02, x + 0.02])


def item_skyline(tid, i):
    x = float(tid) + i * 0.03
    return np.array([[x + 0.001, x + 0.015], [x + 0.015, x + 0.001]])


def run_threads(worker):
    """Run ``worker(tid)`` on N_THREADS threads, re-raising any failure."""
    errors = []
    barrier = threading.Barrier(N_THREADS)

    def wrapped(tid):
        try:
            barrier.wait()
            worker(tid)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        list(pool.map(wrapped, range(N_THREADS)))
    if errors:
        raise errors[0]


def assert_index_consistent(cache):
    """Every stored item is findable through the R*-tree, and nothing else."""
    found = cache.candidates(EVERYTHING, record=False)
    assert len(found) == len(cache)
    assert {id(i) for i in found} == {id(i) for i in cache}
    for item in list(cache):
        hits = cache.candidates(item.constraints, record=False)
        assert any(h is item for h in hits)


class TestConcurrentInsertLookup:
    def test_no_lost_entries_unbounded(self):
        cache = SkylineCache()

        def worker(tid):
            for i in range(PER_THREAD):
                item = cache.insert(item_constraints(tid, i), item_skyline(tid, i))
                assert item is not None
                # Interleave lookups with the other threads' inserts.
                hits = cache.candidates(item_constraints(tid, i), record=False)
                assert any(h is item for h in hits)

        run_threads(worker)
        assert len(cache) == N_THREADS * PER_THREAD
        assert cache.insertions == N_THREADS * PER_THREAD
        assert_index_consistent(cache)

    def test_exact_match_after_concurrent_inserts(self):
        cache = SkylineCache()
        run_threads(
            lambda tid: [
                cache.insert(item_constraints(tid, i), item_skyline(tid, i))
                for i in range(PER_THREAD)
            ]
        )
        for tid in range(N_THREADS):
            for i in range(PER_THREAD):
                assert cache.exact_match(item_constraints(tid, i)) is not None


class TestConcurrentEviction:
    @pytest.mark.parametrize("policy", ["lru", "lcu"])
    def test_bounded_cache_counters_reconcile(self, policy):
        capacity = 16
        cache = SkylineCache(capacity=capacity, policy=policy)

        def worker(tid):
            for i in range(PER_THREAD):
                cache.insert(item_constraints(tid, i), item_skyline(tid, i))
                cache.candidates(EVERYTHING, record=False)

        run_threads(worker)
        assert len(cache) == capacity
        assert cache.insertions == N_THREADS * PER_THREAD
        assert cache.evictions == cache.insertions - capacity
        assert_index_consistent(cache)

    def test_touch_races_with_eviction(self):
        cache = SkylineCache(capacity=8, policy="lru")
        seed_items = [
            cache.insert(item_constraints(99, i), item_skyline(99, i))
            for i in range(8)
        ]

        def worker(tid):
            for i in range(PER_THREAD):
                if tid % 2 == 0:
                    cache.insert(item_constraints(tid, i), item_skyline(tid, i))
                else:
                    # Touching possibly-evicted items must never corrupt state.
                    cache.touch(seed_items[i % len(seed_items)])

        run_threads(worker)
        assert len(cache) == 8
        assert_index_consistent(cache)


class TestConcurrentVerifyAndHeal:
    def test_one_corrupt_item_quarantined_exactly_once(self):
        cache = SkylineCache()
        items = [
            cache.insert(item_constraints(0, i), item_skyline(0, i))
            for i in range(PER_THREAD)
        ]
        bad = items[7]
        bad.skyline = bad.skyline.copy()
        bad.skyline[0, 0] = np.nan  # "non-finite" invariant violation

        results = []
        lock = threading.Lock()

        def worker(tid):
            for item in items:
                ok = cache.verify_and_heal(item)
                with lock:
                    results.append((item, ok))

        run_threads(worker)
        # the corrupt item failed for every thread; no healthy item ever did
        assert all(ok == (item is not bad) for item, ok in results)
        # quarantined exactly once despite 8 threads racing to do it
        assert cache.quarantined == 1
        assert len(cache) == PER_THREAD - 1
        assert_index_consistent(cache)
        assert not any(i is bad for i in cache)

    def test_verify_races_with_inserts_and_lookups(self):
        cache = SkylineCache()
        stable = [
            cache.insert(item_constraints(50, i), item_skyline(50, i))
            for i in range(10)
        ]

        def worker(tid):
            for i in range(PER_THREAD):
                if tid % 3 == 0:
                    cache.insert(item_constraints(tid, i), item_skyline(tid, i))
                elif tid % 3 == 1:
                    assert cache.verify_and_heal(stable[i % len(stable)])
                else:
                    cache.candidates(EVERYTHING, record=False)

        run_threads(worker)
        assert cache.quarantined == 0
        assert_index_consistent(cache)
