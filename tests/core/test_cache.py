"""Tests for the skyline cache and its replacement policies."""

import numpy as np
import pytest

from repro.core.cache import SkylineCache
from repro.geometry.constraints import Constraints


def make_item_args(x: float, width: float = 0.1):
    """Constraints + a tiny skyline near (x, x)."""
    c = Constraints([x, x], [x + width, x + width])
    sky = np.array([[x + 0.01, x + 0.05], [x + 0.05, x + 0.01]])
    return c, sky


class TestInsertAndLookup:
    def test_insert_and_find(self):
        cache = SkylineCache()
        c, sky = make_item_args(0.2)
        item = cache.insert(c, sky)
        assert item is not None
        assert len(cache) == 1
        found = cache.candidates(Constraints([0.0, 0.0], [1.0, 1.0]))
        assert found == [item]

    def test_mbr_is_skyline_mbr_not_constraints(self):
        cache = SkylineCache()
        c = Constraints([0.0, 0.0], [1.0, 1.0])
        sky = np.array([[0.4, 0.6], [0.6, 0.4]])
        item = cache.insert(c, sky)
        np.testing.assert_array_equal(item.mbr_lo, [0.4, 0.4])
        np.testing.assert_array_equal(item.mbr_hi, [0.6, 0.6])
        # A query overlapping the constraints but not the skyline MBR misses.
        assert cache.candidates(Constraints([0.0, 0.0], [0.1, 0.1])) == []

    def test_empty_skyline_not_cached(self):
        cache = SkylineCache()
        assert cache.insert(Constraints([0, 0], [1, 1]), np.empty((0, 2))) is None
        assert len(cache) == 0

    def test_duplicate_constraints_refresh_not_duplicate(self):
        cache = SkylineCache()
        c, sky = make_item_args(0.3)
        first = cache.insert(c, sky)
        second = cache.insert(Constraints(c.lo, c.hi), sky)
        assert first is second
        assert len(cache) == 1
        assert second.use_count == 1  # refresh counted as a use

    def test_shape_validation(self):
        cache = SkylineCache()
        with pytest.raises(ValueError):
            cache.insert(Constraints([0, 0], [1, 1]), np.zeros((2, 3)))

    def test_exact_match(self):
        cache = SkylineCache()
        c, sky = make_item_args(0.5)
        item = cache.insert(c, sky)
        assert cache.exact_match(Constraints(c.lo, c.hi)) is item
        assert cache.exact_match(Constraints([0, 0], [1, 1])) is None

    def test_candidates_requires_mbr_intersection(self):
        cache = SkylineCache()
        cache.insert(*make_item_args(0.1))
        cache.insert(*make_item_args(0.5))
        cache.insert(*make_item_args(0.8))
        found = cache.candidates(Constraints([0.45, 0.45], [0.6, 0.6]))
        assert len(found) == 1
        assert found[0].constraints.lo[0] == 0.5

    def test_hit_miss_counters(self):
        cache = SkylineCache()
        cache.candidates(Constraints([0, 0], [1, 1]))
        assert cache.misses == 1
        cache.insert(*make_item_args(0.2))
        cache.candidates(Constraints([0, 0], [1, 1]))
        assert cache.hits == 1
        cache.candidates(Constraints([0.9, 0.9], [0.95, 0.95]))
        assert cache.misses == 2

    def test_clear(self):
        cache = SkylineCache()
        cache.insert(*make_item_args(0.2))
        cache.clear()
        assert len(cache) == 0
        assert cache.candidates(Constraints([0, 0], [1, 1])) == []

    def test_iteration(self):
        cache = SkylineCache()
        a = cache.insert(*make_item_args(0.1))
        b = cache.insert(*make_item_args(0.6))
        assert set(cache) == {a, b}


class TestReplacement:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SkylineCache(capacity=0)
        with pytest.raises(ValueError):
            SkylineCache(policy="fifo")

    def test_lru_evicts_least_recently_used(self):
        cache = SkylineCache(capacity=2, policy="lru")
        a = cache.insert(*make_item_args(0.1))
        b = cache.insert(*make_item_args(0.4))
        cache.touch(a)  # a now more recent than b
        c = cache.insert(*make_item_args(0.7))
        assert len(cache) == 2
        assert cache.evictions == 1
        survivors = set(cache)
        assert a in survivors and c in survivors and b not in survivors

    def test_lcu_evicts_least_commonly_used(self):
        cache = SkylineCache(capacity=2, policy="lcu")
        a = cache.insert(*make_item_args(0.1))
        b = cache.insert(*make_item_args(0.4))
        cache.touch(a)
        cache.touch(a)
        cache.touch(b)
        c = cache.insert(*make_item_args(0.7))
        survivors = set(cache)
        # b used once, a twice, c zero -- but c was just inserted; LCU evicts b?
        # No: c has use_count 0, so c would be evicted immediately unless b
        # is older-used. LCU evicts the minimum use_count: c (0 uses).
        assert a in survivors and b in survivors and c not in survivors

    def test_eviction_keeps_index_consistent(self):
        cache = SkylineCache(capacity=3, policy="lru")
        for i in range(20):
            cache.insert(*make_item_args(0.04 * i))
        assert len(cache) == 3
        # every remaining item findable through the index
        for item in cache:
            found = cache.candidates(item.constraints)
            assert item in found

    def test_many_inserts_and_lookups_stress(self):
        rng = np.random.default_rng(13)
        cache = SkylineCache(capacity=16, policy="lru")
        for _ in range(300):
            x = float(rng.uniform(0, 0.9))
            cache.insert(*make_item_args(x, width=float(rng.uniform(0.05, 0.3))))
            assert len(cache) <= 16
        probe = Constraints([0.4, 0.4], [0.5, 0.5])
        expected = [
            it
            for it in cache
            if np.all(it.mbr_lo <= probe.hi) and np.all(it.mbr_hi >= probe.lo)
        ]
        assert set(cache.candidates(probe)) == set(expected)
