"""Edge-case tests across the core package."""

import numpy as np
import pytest

from repro.core.cache import SkylineCache
from repro.core.cases import CaseSolution, solve_case_b
from repro.core.cbcs import CBCS
from repro.core.mpr import compute_mpr
from repro.data.generator import generate
from repro.geometry.constraints import Constraints
from repro.skyline.bbs import BBSMethod
from repro.index.rtree import RTree
from repro.storage.table import DiskTable


class TestCaseSolutionEdges:
    def test_solve_with_everything_empty(self):
        sol = CaseSolution(fetch_boxes=[], reusable=np.empty((0, 2)))
        result = sol.solve(np.empty((0, 2)))
        assert result.shape == (0, 2)

    def test_solve_with_only_fetched(self):
        sol = CaseSolution(fetch_boxes=[], reusable=np.empty((0, 2)))
        fetched = np.array([[0.5, 0.5], [0.2, 0.8]])
        result = sol.solve(fetched)
        assert len(result) == 2

    def test_solve_no_pass_with_fetched_points_still_computes(self):
        """needs_skyline_pass=False only short-circuits when nothing was
        fetched; a non-empty fetch always triggers the merge pass."""
        sol = CaseSolution(
            fetch_boxes=[],
            reusable=np.array([[0.5, 0.5]]),
            needs_skyline_pass=False,
        )
        result = sol.solve(np.array([[0.1, 0.1]]))
        assert len(result) == 1
        np.testing.assert_array_equal(result[0], [0.1, 0.1])

    def test_case_b_with_empty_cached_skyline(self):
        old = Constraints([0.0, 0.0], [1.0, 1.0])
        new = Constraints([0.0, 0.0], [0.5, 1.0])
        sol = solve_case_b(old, new, np.empty((0, 2)))
        assert sol.solve(np.empty((0, 2))).shape == (0, 2)


class TestMprEdges:
    def test_identical_constraints_yield_empty_mpr(self):
        c = Constraints([0.1, 0.1], [0.9, 0.9])
        sky = np.array([[0.2, 0.3]])
        mpr = compute_mpr(c, sky, Constraints(c.lo, c.hi))
        assert mpr.boxes == []
        assert mpr.stable
        assert len(mpr.surviving) == 1

    def test_new_region_inside_single_dominance_region(self):
        """A cached point at the old corner dominates the whole new region:
        nothing to fetch, the point survives."""
        old = Constraints([0.0, 0.0], [1.0, 1.0])
        sky = np.array([[0.0, 0.0]])
        new = Constraints([0.0, 0.0], [2.0, 2.0])  # pure expansion
        mpr = compute_mpr(old, sky, new)
        # everything in the expansion is >= (0,0): fully pruned
        assert mpr.boxes == []

    def test_degenerate_zero_width_constraints(self):
        old = Constraints([0.5, 0.0], [0.5, 1.0])  # a line segment
        sky = np.array([[0.5, 0.2]])
        new = Constraints([0.4, 0.0], [0.6, 1.0])
        mpr = compute_mpr(old, sky, new)
        data = np.array([[0.5, 0.2], [0.45, 0.5], [0.55, 0.1]])
        from repro.geometry.box import union_mask

        fetched = data[union_mask(mpr.boxes, data)]
        # the points outside the old line must be fetched
        assert len(fetched) == 2


class TestEngineEdges:
    def test_query_on_empty_table(self):
        engine = CBCS(DiskTable(np.empty((0, 3))))
        out = engine.query(Constraints([0.0] * 3, [1.0] * 3))
        assert out.skyline_size == 0
        assert out.case == "miss"
        # empty results are not cached
        assert len(engine.cache) == 0

    def test_single_point_table(self):
        engine = CBCS(DiskTable(np.array([[0.5, 0.5]])))
        out = engine.query(Constraints([0.0, 0.0], [1.0, 1.0]))
        assert out.skyline_size == 1
        out2 = engine.query(Constraints([0.0, 0.0], [1.0, 0.9]))
        assert out2.skyline_size == 1
        assert out2.cache_hit

    def test_query_region_with_no_points_then_wider(self):
        data = generate("independent", 200, 2, seed=13)
        engine = CBCS(DiskTable(data))
        empty = engine.query(Constraints([2.0, 2.0], [3.0, 3.0]))
        assert empty.skyline_size == 0
        wider = engine.query(Constraints([0.0, 0.0], [1.0, 1.0]))
        assert wider.skyline_size > 0

    def test_replace_skyline_with_empty_removes_item(self):
        cache = SkylineCache()
        item = cache.insert(
            Constraints([0.0, 0.0], [1.0, 1.0]), np.array([[0.5, 0.5]])
        )
        assert cache.replace_skyline(item, np.empty((0, 2))) is None
        assert len(cache) == 0


class TestBBSMethodEdges:
    def test_prebuilt_tree_is_used(self):
        pts = generate("independent", 200, 2, seed=14)
        tree = RTree.bulk_load_points(pts, max_entries=8)
        method = BBSMethod(data=None, tree=tree)
        assert method.tree is tree
        out = method.query(Constraints([0.0, 0.0], [1.0, 1.0]))
        assert out.skyline_size > 0

    def test_empty_prebuilt_tree_not_replaced(self):
        empty_tree = RTree(2)
        method = BBSMethod(data=None, tree=empty_tree)
        assert method.tree is empty_tree
