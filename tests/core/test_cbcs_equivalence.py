"""End-to-end correctness of the CBCS engine.

The single most important property in the repository: for ANY sequence of
queries, any strategy, any region computer and any cache state, CBCS must
return exactly the constrained skyline that the naive plan (and brute force)
returns -- the caching is purely a performance device (Theorem 6).
"""

import numpy as np
import pytest

from repro.core.ampr import ApproximateMPR, ExactMPR
from repro.core.cache import SkylineCache
from repro.core.cbcs import CBCS
from repro.core.strategies import default_strategy_suite
from repro.data.generator import generate
from repro.geometry.constraints import Constraints
from repro.skyline.baseline import BaselineMethod
from repro.skyline.bbs import BBSMethod
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

from tests.core.conftest import (
    assert_same_point_set,
    constrained_skyline_oracle,
)


def run_equivalence(data, queries, engine, context=""):
    for i, c in enumerate(queries):
        outcome = engine.query(c)
        assert_same_point_set(
            outcome.skyline,
            constrained_skyline_oracle(data, c),
            context=f"{context} query#{i} case={outcome.case}",
        )


@pytest.fixture(scope="module")
def dataset():
    return generate("independent", 2000, 3, seed=77)


@pytest.fixture(scope="module")
def table(dataset):
    return DiskTable(dataset)


class TestExploratoryEquivalence:
    @pytest.mark.parametrize("region", [ExactMPR(), ApproximateMPR(1), ApproximateMPR(5)],
                             ids=["mpr", "ampr1", "ampr5"])
    def test_refinement_chains(self, dataset, table, region):
        gen = WorkloadGenerator(dataset, seed=5)
        queries = gen.exploratory_stream(40)
        engine = CBCS(table, cache=SkylineCache(), region_computer=region)
        run_equivalence(dataset, queries, engine, context=region.name)

    @pytest.mark.parametrize("strategy", default_strategy_suite(seed=2),
                             ids=lambda s: s.name)
    def test_every_strategy(self, dataset, table, strategy):
        gen = WorkloadGenerator(dataset, seed=9)
        queries = gen.exploratory_stream(30)
        engine = CBCS(
            table, cache=SkylineCache(), strategy=strategy,
            region_computer=ApproximateMPR(1),
        )
        run_equivalence(dataset, queries, engine, context=strategy.name)

    @pytest.mark.parametrize(
        "distribution", ["correlated", "anticorrelated"]
    )
    def test_skewed_data(self, distribution):
        data = generate(distribution, 1500, 3, seed=31)
        table = DiskTable(data)
        gen = WorkloadGenerator(data, seed=13)
        engine = CBCS(table, region_computer=ExactMPR())
        run_equivalence(data, gen.exploratory_stream(25), engine, distribution)

    def test_duplicated_data(self):
        base = generate("independent", 800, 2, seed=41)
        data = np.vstack([base, base[:200]])
        table = DiskTable(data)
        gen = WorkloadGenerator(data, seed=17)
        engine = CBCS(table, region_computer=ExactMPR())
        run_equivalence(data, gen.exploratory_stream(25), engine, "duplicates")

    def test_higher_dimensional(self):
        data = generate("independent", 1200, 5, seed=51)
        table = DiskTable(data)
        gen = WorkloadGenerator(data, seed=19)
        engine = CBCS(table, region_computer=ApproximateMPR(3))
        run_equivalence(data, gen.exploratory_stream(20), engine, "5d")


class TestIndependentEquivalence:
    def test_preloaded_cache(self, dataset, table):
        gen = WorkloadGenerator(dataset, seed=23)
        engine = CBCS(table, region_computer=ApproximateMPR(3))
        engine.warm(gen.independent_queries(30))
        run_equivalence(
            dataset, gen.independent_queries(20), engine, "independent"
        )

    def test_with_cache_churn(self, dataset, table):
        gen = WorkloadGenerator(dataset, seed=29)
        engine = CBCS(
            table,
            cache=SkylineCache(capacity=5, policy="lru"),
            region_computer=ApproximateMPR(1),
        )
        run_equivalence(dataset, gen.exploratory_stream(40), engine, "churn")

    def test_lcu_policy(self, dataset, table):
        gen = WorkloadGenerator(dataset, seed=37)
        engine = CBCS(
            table,
            cache=SkylineCache(capacity=4, policy="lcu"),
            region_computer=ApproximateMPR(2),
        )
        run_equivalence(dataset, gen.exploratory_stream(30), engine, "lcu")


class TestEngineBehaviour:
    def test_first_query_is_a_miss(self, dataset):
        engine = CBCS(DiskTable(dataset))
        out = engine.query(Constraints([0.2] * 3, [0.8] * 3))
        assert out.case == "miss"
        assert not out.cache_hit

    def test_exact_repeat_is_free(self, dataset):
        engine = CBCS(DiskTable(dataset))
        c = Constraints([0.2] * 3, [0.8] * 3)
        engine.query(c)
        out = engine.query(Constraints(c.lo, c.hi))
        assert out.case == "exact"
        assert out.cache_hit
        assert out.points_read == 0
        assert_same_point_set(out.skyline, constrained_skyline_oracle(dataset, c))

    def test_case_b_reads_nothing(self, dataset):
        engine = CBCS(DiskTable(dataset))
        engine.query(Constraints([0.2] * 3, [0.8] * 3))
        out = engine.query(Constraints([0.2] * 3, [0.8, 0.8, 0.7]))
        assert out.case == "case_b"
        assert out.points_read == 0
        assert out.range_queries == 0
        assert out.timings.skyline_ms >= 0

    def test_cached_query_reads_fewer_points_than_baseline(self, dataset):
        table = DiskTable(dataset)
        engine = CBCS(table)
        baseline = BaselineMethod(DiskTable(dataset))
        c1 = Constraints([0.2] * 3, [0.8] * 3)
        c2 = Constraints([0.2] * 3, [0.8, 0.8, 0.85])  # case c
        engine.query(c1)
        cbcs_out = engine.query(c2)
        base_out = baseline.query(c2)
        assert cbcs_out.case == "case_c"
        assert cbcs_out.points_read < base_out.points_read
        assert_same_point_set(cbcs_out.skyline, base_out.skyline)

    def test_no_result_caching_when_disabled(self, dataset):
        engine = CBCS(DiskTable(dataset), cache_results=False)
        engine.query(Constraints([0.2] * 3, [0.8] * 3))
        assert len(engine.cache) == 0

    def test_dimension_validation(self, dataset):
        engine = CBCS(DiskTable(dataset))
        with pytest.raises(ValueError):
            engine.query(Constraints([0.0], [1.0]))

    def test_stats_fields_populated(self, dataset):
        engine = CBCS(DiskTable(dataset))
        engine.query(Constraints([0.1] * 3, [0.9] * 3))
        out = engine.query(Constraints([0.1] * 3, [0.9, 0.9, 0.95]))
        assert out.method.startswith("CBCS")
        assert out.stable is not None
        assert out.timings.processing_ms > 0
        assert out.total_ms > 0

    def test_empty_region_query(self, dataset):
        engine = CBCS(DiskTable(dataset))
        out = engine.query(Constraints([5.0] * 3, [6.0] * 3))
        assert out.skyline_size == 0


class TestCrossMethodAgreement:
    """Baseline, BBS and CBCS agree query for query."""

    def test_three_methods_agree(self, dataset):
        table = DiskTable(dataset)
        methods = [
            BaselineMethod(table),
            BBSMethod(dataset, max_entries=32),
            CBCS(DiskTable(dataset), region_computer=ApproximateMPR(1)),
        ]
        gen = WorkloadGenerator(dataset, seed=43)
        for c in gen.exploratory_stream(15):
            outcomes = [m.query(c) for m in methods]
            expected = constrained_skyline_oracle(dataset, c)
            for out in outcomes:
                assert_same_point_set(out.skyline, expected, context=out.method)
