"""Tests for dynamic data support (paper Section 6.2 extension)."""

import numpy as np
import pytest

from repro.core.dynamic import DynamicCBCS
from repro.data.generator import generate
from repro.geometry.constraints import Constraints
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

from tests.core.conftest import assert_same_point_set, constrained_skyline_oracle


def live_data(table):
    return table.data_view()[table._alive]


class TestTableUpdates:
    def test_append_extends_heap_and_indexes(self):
        data = generate("independent", 500, 2, seed=1)
        table = DiskTable(data)
        new_rows = np.array([[0.01, 0.01], [0.99, 0.99]])
        ids = table.append(new_rows)
        assert list(ids) == [500, 501]
        assert table.n == 502
        box = Constraints([0.0, 0.0], [0.02, 0.02]).region()
        result = table.range_query(box)
        assert 500 in result.rowids

    def test_append_shape_validation(self):
        table = DiskTable(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            table.append(np.zeros((1, 2)))

    def test_delete_hides_rows_from_queries(self):
        data = generate("independent", 300, 2, seed=2)
        table = DiskTable(data)
        target = int(np.argmin(data.sum(axis=1)))
        assert table.delete([target]) == 1
        assert table.live_count == 299
        result = table.range_query(Constraints([0, 0], [1, 1]).region())
        assert target not in result.rowids

    def test_delete_is_idempotent(self):
        table = DiskTable(np.zeros((3, 2)))
        assert table.delete([1]) == 1
        assert table.delete([1]) == 0

    def test_delete_bounds_checked(self):
        table = DiskTable(np.zeros((3, 2)))
        with pytest.raises(IndexError):
            table.delete([99])

    def test_row_accessor(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        table = DiskTable(data)
        np.testing.assert_array_equal(table.row(1), [3.0, 4.0])
        table.delete([1])
        with pytest.raises(KeyError):
            table.row(1)

    def test_full_scan_skips_dead_rows(self):
        data = generate("independent", 100, 2, seed=3)
        table = DiskTable(data)
        table.delete([0, 1, 2])
        result = table.full_scan()
        assert len(result) == 97

    def test_vacuum_cleans_indexes(self):
        data = generate("independent", 300, 2, seed=9)
        table = DiskTable(data)
        table.delete([5, 10, 15])
        assert table.vacuum() == 3
        # indexes no longer hold dead entries
        for dim in range(2):
            assert len(table.index(dim)) == 297
        # repeated vacuum is a no-op
        assert table.vacuum() == 0
        # queries unchanged
        result = table.range_query(Constraints([0, 0], [1, 1]).region())
        assert len(result) == 297
        assert {5, 10, 15}.isdisjoint(result.rowids)

    def test_vacuum_then_more_updates(self):
        data = generate("independent", 200, 2, seed=10)
        table = DiskTable(data)
        table.delete([0, 1])
        table.vacuum()
        new_ids = table.append(np.array([[0.5, 0.5]]))
        table.delete(new_ids)
        assert table.vacuum() == 1
        assert table.live_count == 198

    def test_append_expands_domain(self):
        table = DiskTable(np.array([[0.5, 0.5]]))
        table.append(np.array([[0.1, 0.9]]))
        np.testing.assert_array_equal(table.domain_lo, [0.1, 0.5])
        np.testing.assert_array_equal(table.domain_hi, [0.5, 0.9])


class TestCacheMaintenance:
    @pytest.fixture()
    def engine(self):
        data = generate("independent", 800, 2, seed=5)
        return DynamicCBCS(DiskTable(data))

    def test_insert_dominating_point_updates_cached_item(self, engine):
        c = Constraints([0.2, 0.2], [0.8, 0.8])
        before = engine.query(c)
        # a point at the region's corner, dominating everything inside
        engine.insert_points(np.array([[0.2005, 0.2005]]))
        after = engine.query(c)
        assert after.case == "exact"  # served from the maintained cache
        data = live_data(engine.table)
        assert_same_point_set(after.skyline, constrained_skyline_oracle(data, c))
        assert any(np.allclose(p, [0.2005, 0.2005]) for p in after.skyline)
        assert after.skyline_size <= before.skyline_size + 1

    def test_insert_dominated_point_leaves_item_untouched(self, engine):
        c = Constraints([0.0, 0.0], [1.0, 1.0])
        before = engine.query(c)
        engine.insert_points(np.array([[0.95, 0.95]]))
        after = engine.query(c)
        assert after.case == "exact"
        assert after.skyline_size == before.skyline_size

    def test_delete_skyline_point_refreshes_item(self, engine):
        c = Constraints([0.1, 0.1], [0.9, 0.9])
        first = engine.query(c)
        victim = first.skyline[0]
        data_view = engine.table.data_view()
        rowid = int(np.flatnonzero(np.all(data_view == victim, axis=1))[0])
        engine.delete_points([rowid])
        after = engine.query(c)
        data = live_data(engine.table)
        assert_same_point_set(after.skyline, constrained_skyline_oracle(data, c))
        assert not any(np.allclose(p, victim) for p in after.skyline)

    def test_delete_policy_evict(self):
        data = generate("independent", 400, 2, seed=6)
        engine = DynamicCBCS(DiskTable(data), on_delete="evict")
        c = Constraints([0.0, 0.0], [1.0, 1.0])
        first = engine.query(c)
        victim = first.skyline[0]
        rowid = int(
            np.flatnonzero(np.all(engine.table.data_view() == victim, axis=1))[0]
        )
        assert len(engine.cache) == 1
        engine.delete_points([rowid])
        assert len(engine.cache) == 0

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            DynamicCBCS(DiskTable(np.zeros((1, 2))), on_delete="ignore")


class TestInterleavedEquivalence:
    """The load-bearing property: queries stay exact through churn."""

    @pytest.mark.parametrize("policy", ["refresh", "evict"])
    def test_mixed_updates_and_queries(self, policy):
        rng = np.random.default_rng(77)
        data = generate("independent", 1000, 3, seed=7)
        engine = DynamicCBCS(DiskTable(data), on_delete=policy)
        gen = WorkloadGenerator(data, seed=8)
        for step, c in enumerate(gen.exploratory_stream(25)):
            action = rng.random()
            if action < 0.3:
                engine.insert_points(rng.uniform(0, 1, size=(3, 3)))
            elif action < 0.5 and engine.table.live_count > 10:
                alive = np.flatnonzero(engine.table._alive)
                engine.delete_points(rng.choice(alive, size=2, replace=False))
            out = engine.query(c)
            current = live_data(engine.table)
            assert_same_point_set(
                out.skyline,
                constrained_skyline_oracle(current, c),
                context=f"step={step} policy={policy} case={out.case}",
            )
