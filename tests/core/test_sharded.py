"""Tests for :mod:`repro.core.sharded` (fan-out/merge over shards)."""

import numpy as np
import pytest

from repro.core.cbcs import CBCS
from repro.core.sharded import ShardedCBCS, ShardedOutcome
from repro.core.strategies import MaxOverlapSP
from repro.geometry.constraints import Constraints
from repro.storage.sharding import ShardedTable
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

from tests.core.conftest import assert_same_point_set, constrained_skyline_oracle


def make_data(n=800, ndim=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 1, size=(n, ndim))


def stream(data, n=25, seed=7):
    return list(
        WorkloadGenerator(data, seed=seed).partition_stream(
            n, tenants=4, key_dim=0
        )
    )


class TestBitIdentity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("mode", ["range", "hash"])
    def test_matches_unsharded_engine(self, n_shards, mode):
        data = make_data()
        reference = CBCS(DiskTable(data), strategy=MaxOverlapSP())
        engine = ShardedCBCS(
            ShardedTable(data, n_shards, mode=mode),
            strategy_factory=MaxOverlapSP,
        )
        for constraints in stream(data):
            expected = reference.query(constraints)
            outcome = engine.query(constraints)
            assert_same_point_set(
                outcome.skyline, expected.skyline,
                context=f"shards={n_shards} mode={mode}",
            )
        reference.close()
        engine.close()

    def test_matches_oracle(self):
        data = make_data(seed=3)
        engine = ShardedCBCS(ShardedTable(data, 4))
        for constraints in stream(data, seed=11):
            outcome = engine.query(constraints)
            assert_same_point_set(
                outcome.skyline, constrained_skyline_oracle(data, constraints)
            )
        engine.close()

    def test_workers_do_not_change_the_answer(self):
        data = make_data()
        serial = ShardedCBCS(ShardedTable(data, 4), cache_results=False)
        threaded = ShardedCBCS(
            ShardedTable(data, 4), cache_results=False, workers=4
        )
        for constraints in stream(data):
            a = serial.query(constraints)
            b = threaded.query(constraints)
            assert_same_point_set(a.skyline, b.skyline)
            assert a.points_read == b.points_read
        serial.close()
        threaded.close()


class TestMergeEdgeCases:
    def test_all_shards_pruned_yields_empty_skyline_zero_io(self):
        # Data lives in [0, 1]^3; the constraint region sits entirely above
        # it on dim 0, so every shard MBR is disjoint.
        data = make_data()
        engine = ShardedCBCS(ShardedTable(data, 4))
        outcome = engine.query(Constraints([2.0, 0.0, 0.0], [3.0, 1.0, 1.0]))
        assert outcome.skyline.shape == (0, 3)
        assert outcome.skyline_size == 0
        assert outcome.points_read == 0
        assert outcome.io.range_queries == 0
        assert outcome.shards_pruned == 4
        assert outcome.shards_scanned == 0
        assert outcome.merge_candidates == 0
        assert outcome.per_shard == []
        engine.close()

    def test_duplicate_point_across_shard_boundary_survives_twice(self):
        # The same coordinate vector placed in two different shards: both
        # copies are mutually non-dominating, so the merged skyline must
        # keep both -- exactly like the unsharded engine does.
        dup = [0.05, 0.05, 0.05]
        filler = make_data(n=100, seed=5) * 0.5 + 0.4
        data = np.vstack([dup, dup, filler])
        assignments = np.array([0, 1] + [i % 2 for i in range(len(filler))])
        engine = ShardedCBCS(
            ShardedTable(data, 2, mode="explicit", assignments=assignments)
        )
        reference = CBCS(DiskTable(data))
        constraints = Constraints([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        outcome = engine.query(constraints)
        expected = reference.query(constraints)
        dup_copies = int(
            np.sum(np.all(np.isclose(outcome.skyline, dup), axis=1))
        )
        assert dup_copies == 2
        assert_same_point_set(outcome.skyline, expected.skyline)
        engine.close()
        reference.close()

    def test_merge_candidates_reconcile_with_per_shard_skylines(self):
        data = make_data()
        engine = ShardedCBCS(ShardedTable(data, 4))
        for constraints in stream(data):
            outcome = engine.query(constraints)
            assert outcome.merge_candidates == sum(
                p["skyline_size"] for p in outcome.per_shard
            )
            assert outcome.skyline_size <= outcome.merge_candidates
            assert outcome.points_read == sum(
                p["points_read"] for p in outcome.per_shard
            )
        engine.close()


class TestAccountingAndOutcome:
    def test_shard_counts_always_reconcile(self):
        data = make_data()
        engine = ShardedCBCS(ShardedTable(data, 8))
        for constraints in stream(data):
            outcome = engine.query(constraints)
            assert (
                outcome.shards_pruned + outcome.shards_scanned
                == outcome.shards_total
                == 8
            )
            assert len(outcome.shard_decisions) == 8
        engine.close()

    def test_outcome_record_carries_sharding_section(self):
        data = make_data()
        engine = ShardedCBCS(ShardedTable(data, 2))
        outcome = engine.query(stream(data)[0])
        assert isinstance(outcome, ShardedOutcome)
        record = outcome.as_record()
        assert record["sharding"]["shards_total"] == 2
        assert "per_shard" in record["sharding"]
        engine.close()

    def test_pruning_cache_hit_on_repeat_query(self):
        data = make_data()
        engine = ShardedCBCS(ShardedTable(data, 4))
        constraints = stream(data)[0]
        first = engine.query(constraints)
        second = engine.query(constraints)
        assert not first.pruning_cached
        assert second.pruning_cached
        assert engine.pruning_cache.hits >= 1
        engine.close()

    def test_per_shard_caches_hit_on_repeat_query(self):
        data = make_data()
        engine = ShardedCBCS(ShardedTable(data, 4))
        constraints = stream(data)[0]
        engine.query(constraints)
        second = engine.query(constraints)
        assert second.cache_hit
        assert sum(c.hits for c in engine.shard_caches()) >= 1
        engine.close()

    def test_ndim_mismatch_rejected(self):
        engine = ShardedCBCS(ShardedTable(make_data(), 2))
        with pytest.raises(ValueError):
            engine.query(Constraints([0.0], [1.0]))
        engine.close()


class TestDynamicSharded:
    def test_insert_routes_and_answers_stay_correct(self):
        data = make_data(n=300)
        engine = ShardedCBCS(ShardedTable(data, 4), dynamic=True)
        new_rows = np.array([[0.01, 0.02, 0.03], [0.9, 0.91, 0.92]])
        rowids = engine.insert_points(new_rows)
        assert len(rowids) == 2
        full = np.vstack([data, new_rows])
        constraints = Constraints([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        outcome = engine.query(constraints)
        assert_same_point_set(
            outcome.skyline, constrained_skyline_oracle(full, constraints)
        )
        engine.close()

    def test_insert_outside_mbr_invalidates_pruning_sets(self):
        data = make_data(n=300)
        engine = ShardedCBCS(ShardedTable(data, 4), dynamic=True)
        constraints = stream(data)[0]
        engine.query(constraints)
        assert len(engine.pruning_cache) == 1
        # A point beyond every shard's current extent must grow some MBR.
        engine.insert_points(np.array([[1.5, 1.5, 1.5]]))
        assert len(engine.pruning_cache) == 0
        assert engine.pruning_cache.invalidations == 1
        engine.close()

    def test_insert_inside_mbr_keeps_pruning_sets(self):
        data = make_data(n=300)
        engine = ShardedCBCS(ShardedTable(data, 4), dynamic=True)
        constraints = stream(data)[0]
        engine.query(constraints)
        assert len(engine.pruning_cache) == 1
        # Dead centre of shard 0's MBR: no summary changes, cache survives.
        summary = engine.table.summaries[0]
        inside = (summary.mbr_lo + summary.mbr_hi) / 2
        assert engine.table.route(inside) == 0
        engine.insert_points(inside.reshape(1, -1))
        assert len(engine.pruning_cache) == 1
        assert engine.pruning_cache.invalidations == 0
        engine.close()

    def test_mbr_growth_changes_pruning_decision(self):
        # Regression for the invalidation rule: a query whose region missed
        # shard 3 entirely must rescan it after an insert lands there.
        data = make_data(n=400)
        engine = ShardedCBCS(ShardedTable(data, 4), dynamic=True)
        lo = float(engine.table.summaries[3].mbr_hi[0]) + 0.1
        constraints = Constraints([lo, 0.0, 0.0], [2.0, 1.0, 1.0])
        before = engine.query(constraints)
        assert before.shards_scanned == 0
        new_point = np.array([[lo + 0.05, 0.5, 0.5]])
        engine.insert_points(new_point)
        after = engine.query(constraints)
        assert after.shards_scanned == 1
        assert_same_point_set(after.skyline, new_point)
        engine.close()

    def test_delete_invalidates_conservatively(self):
        data = make_data(n=300)
        engine = ShardedCBCS(ShardedTable(data, 4), dynamic=True)
        rowids = engine.insert_points(np.array([[0.5, 0.5, 0.5]]))
        engine.query(stream(data)[0])
        assert len(engine.pruning_cache) == 1
        sid = engine.table.route([0.5, 0.5, 0.5])
        deleted = engine.delete_points(sid, rowids)
        assert deleted == 1
        assert len(engine.pruning_cache) == 0
        engine.close()

    def test_dynamic_required_for_mutations(self):
        engine = ShardedCBCS(ShardedTable(make_data(), 2))
        with pytest.raises(TypeError):
            engine.insert_points(np.array([[0.5, 0.5, 0.5]]))
        with pytest.raises(TypeError):
            engine.delete_points(0, [0])
        engine.close()
