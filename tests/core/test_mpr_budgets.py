"""Completeness under every approximation knob of the MPR.

The conservative fallbacks (piece budgets, anchor coarsening, box merging)
may only ever *grow* the fetched region -- the final skyline must stay
exact for any knob setting, including adversarially tiny budgets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ampr import ApproximateMPR
from repro.core.cbcs import CBCS
from repro.core.dynamic import DynamicCBCS
from repro.core.mpr import _coarsen_dominators, compute_mpr
from repro.core.multi import MultiItemMPR
from repro.data.generator import generate
from repro.geometry.box import pairwise_disjoint, union_mask
from repro.geometry.constraints import Constraints
from repro.skyline.sfs import sfs_skyline
from repro.storage.table import DiskTable
from repro.workload.generator import WorkloadGenerator

from tests.core.conftest import (
    assert_same_point_set,
    constrained_skyline_oracle,
    random_constraints,
)


def solve(mpr, data):
    fetched = data[union_mask(mpr.boxes, data)]
    pool = np.vstack([mpr.surviving, fetched]) if len(mpr.surviving) else fetched
    if len(pool) == 0:
        return pool
    return pool[sfs_skyline(pool)]


class TestBudgetedCompleteness:
    @pytest.mark.parametrize("pieces", [1, 2, 8, 64])
    @pytest.mark.parametrize("anchors", [1, 2, 8])
    def test_unstable_with_tiny_budgets(self, pieces, anchors):
        rng = np.random.default_rng(pieces * 100 + anchors)
        data = generate("anticorrelated", 400, 3, seed=3)
        for _ in range(6):
            old = random_constraints(rng, 3)
            # force instability: raise every lower bound a little
            new = Constraints(
                np.minimum(old.lo + 0.1, old.hi), old.hi
            )
            sky = constrained_skyline_oracle(data, old)
            surviving = sky[new.satisfied_mask(sky)] if len(sky) else sky
            mpr = compute_mpr(
                old, sky, new,
                prune_with=surviving[:1],
                max_invalidation_pieces=pieces,
                max_invalidation_anchors=anchors,
                merge_boxes=True,
            )
            assert pairwise_disjoint(mpr.boxes)
            assert_same_point_set(
                solve(mpr, data), constrained_skyline_oracle(data, new)
            )

    @given(st.integers(0, 300), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_random_knobs(self, seed, anchors):
        rng = np.random.default_rng(seed)
        data = rng.uniform(0, 1, size=(120, 2))
        old = random_constraints(rng, 2)
        new = random_constraints(rng, 2)
        sky = constrained_skyline_oracle(data, old)
        surviving = sky[new.satisfied_mask(sky)] if len(sky) else sky
        mpr = compute_mpr(
            old, sky, new,
            prune_with=surviving[: min(2, len(surviving))],
            max_invalidation_pieces=8,
            max_invalidation_anchors=anchors,
            merge_boxes=True,
        )
        assert_same_point_set(
            solve(mpr, data), constrained_skyline_oracle(data, new)
        )


class TestCoarsening:
    def test_coarsen_returns_input_when_small(self):
        pts = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(_coarsen_dominators(pts, 5), pts)

    def test_coarsen_bounds_group_count(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, size=(100, 3))
        anchors = _coarsen_dominators(pts, 7)
        assert len(anchors) == 7

    def test_anchors_cover_their_groups(self):
        """Every original point weakly dominates... is weakly dominated by
        its group anchor: anchor <= point componentwise."""
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 1, size=(50, 3))
        anchors = _coarsen_dominators(pts, 5)
        for p in pts:
            assert any(np.all(a <= p + 1e-12) for a in anchors)


class TestCombinedExtensions:
    def test_dynamic_engine_with_multi_item_region(self):
        """Dynamic maintenance and multi-item regions compose correctly."""
        rng = np.random.default_rng(5)
        data = generate("independent", 900, 2, seed=9)
        engine = DynamicCBCS(
            DiskTable(data),
            region_computer=MultiItemMPR(k=2, max_items=2),
        )
        gen = WorkloadGenerator(data, seed=10)
        for step, c in enumerate(gen.exploratory_stream(20)):
            if step % 4 == 1:
                engine.insert_points(rng.uniform(0, 1, size=(2, 2)))
            if step % 5 == 2 and engine.table.live_count > 10:
                alive = np.flatnonzero(engine.table._alive)
                engine.delete_points(alive[:1])
            out = engine.query(c)
            current = engine.table.data_view()[engine.table._alive]
            assert_same_point_set(
                out.skyline,
                constrained_skyline_oracle(current, c),
                context=f"step={step}",
            )

    def test_capped_cache_with_multi_item(self):
        from repro.core.cache import SkylineCache

        data = generate("independent", 800, 2, seed=11)
        engine = CBCS(
            DiskTable(data),
            cache=SkylineCache(capacity=3, policy="lcu"),
            region_computer=MultiItemMPR(k=1, max_items=3),
        )
        gen = WorkloadGenerator(data, seed=12)
        for c in gen.exploratory_stream(25):
            out = engine.query(c)
            assert_same_point_set(
                out.skyline, constrained_skyline_oracle(data, c)
            )
        assert len(engine.cache) <= 3
