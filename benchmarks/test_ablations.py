"""Ablation benchmarks for design choices the paper leaves open.

- cache replacement (Section 6.2): capped caches must stay usable;
- multi-item processing (Section 6.3): a second item can only reduce the
  region fetched;
- the unstable-case invalidation approximation: coarser covers mean fewer
  range queries but more points to read.
"""

from repro.bench.ablations import (
    ablation_cost_strategy,
    ablation_invalidation,
    ablation_multi_item,
    ablation_page_cache,
    ablation_replacement,
    ablation_skyline_algorithm,
)


def test_replacement(figure_runner):
    report = figure_runner(ablation_replacement)
    s = report.series

    # An unbounded cache is at least as effective as any capped one.
    assert s["unbounded"]["hit_rate"] >= s["LRU, cap 8"]["hit_rate"] - 1e-9
    # Capped caches actually evicted under this workload (the test bites).
    assert s["LRU, cap 8"]["evictions"] > 0
    assert s["LCU, cap 8"]["evictions"] > 0
    # Even under pressure the cache keeps a substantial hit rate.
    assert s["LRU, cap 8"]["hit_rate"] > 0.5


def test_multi_item(figure_runner):
    report = figure_runner(ablation_multi_item)
    s = report.series

    single = s["single item (aMPR 1NN)"]["mean_points_read"]
    multi2 = s["multi item (2 x 1NN)"]["mean_points_read"]
    # A second item can only remove territory from the MPR.
    assert multi2 <= single * 1.05


def test_page_cache(figure_runner):
    """A warm buffer pool helps the Baseline's I/O but cannot remove its
    CPU work; CBCS avoids examining the points in the first place."""
    report = figure_runner(ablation_page_cache)
    s = report.series

    cold = s["Baseline (cold cache)"]
    warm = s["Baseline (warm buffer)"]
    cbcs = s["CBCS aMPR (cold cache)"]

    # The buffer removes most repeated-read latency ...
    assert warm["io_ms"] < cold["io_ms"]
    # ... but leaves the tuple-examination work untouched.
    assert warm["mean_points_read"] == cold["mean_points_read"]
    # CBCS reads far fewer points than either Baseline configuration.
    assert cbcs["mean_points_read"] < 0.6 * warm["mean_points_read"]


def test_skyline_algorithm_independence(figure_runner):
    """Section 7.3: 'the benefit of our CBCS method is independent of the
    skyline algorithm used, since this is anyway not a bottleneck'."""
    report = figure_runner(ablation_skyline_algorithm)
    s = report.series

    # Identical disk behaviour regardless of the in-memory algorithm.
    reads = [v["mean_points_read"] for v in s.values()]
    assert max(reads) == min(reads)

    # The skyline stage is a minor part of the total for every algorithm.
    for v in s.values():
        assert v["mean_skyline_ms"] <= v["mean_ms"] * 0.5


def test_cost_strategy(figure_runner):
    """The cost-based strategy optimizes points read directly; it must not
    lose on that metric to the heuristics, whatever the selection overhead."""
    report = figure_runner(ablation_cost_strategy)
    s = report.series
    heuristic_best = min(
        s["MaxOverlapSP"]["mean_points_read"],
        s["PrioritizednD (Std)"]["mean_points_read"],
    )
    assert s["CostBased"]["mean_points_read"] <= heuristic_best * 1.1
    # its price is visible as selection overhead
    assert s["CostBased"]["processing_ms"] >= s["MaxOverlapSP"]["processing_ms"]


def test_invalidation(figure_runner):
    report = figure_runner(ablation_invalidation)
    s = report.series

    # Coarser covers: fewer range queries ...
    assert (
        s["1 anchor (collapse)"]["mean_boxes"]
        <= s["8 anchors"]["mean_boxes"]
        <= s["exact staircase"]["mean_boxes"] + 1e-9
    )
    # ... at the price of more points to read.
    assert (
        s["exact staircase"]["mean_points"]
        <= s["8 anchors"]["mean_points"] + 1e-9
    )
    assert (
        s["8 anchors"]["mean_points"]
        <= s["1 anchor (collapse)"]["mean_points"] + 1e-9
    )
