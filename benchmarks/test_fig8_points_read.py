"""Figure 8: average number of points read from disk.

Paper result: Baseline's reads grow steeply with dataset size while the
cache-based methods' stay nearly flat (driven by the constraint *change*,
not the dataset size); the exact MPR reads the fewest points of all.
"""

import math

from repro.bench.experiments import fig8_points_read


def finite(values):
    return [v for v in values if not math.isnan(v)]


def test_fig8(figure_runner):
    report = figure_runner(fig8_points_read)
    a = report.series["a"]  # |D| = 5
    b = report.series["b"]  # |D| = 3, incl. exact MPR

    base_a, ampr_a = finite(a["Baseline"]), finite(a["aMPR"])
    assert base_a[-1] > base_a[0]  # Baseline grows with |S|
    assert ampr_a[-1] < base_a[-1]  # aMPR reads fewer points

    # 8b: MPR <= aMPR <= Baseline (minimality ordering).
    assert finite(b["MPR"])[-1] <= finite(b["aMPR"])[-1] + 1e-9
    assert finite(b["aMPR"])[-1] < finite(b["Baseline"])[-1]
