"""Figure 5: scalability with dataset size (interactive, |D|=5).

Paper result: CBCS/aMPR scales significantly better than Baseline on all
three distributions; the stable-case curve is far below everything; BBS is
no better than Baseline on independent data.
"""

import math

import numpy as np
import pytest

from repro.bench.experiments import fig5_scalability
from repro.bench.harness import bench_scale


def last(values):
    finite = [v for v in values if not math.isnan(v)]
    return finite[-1] if finite else float("nan")


def time_tolerance():
    """At quick scale the Baseline's single fetch costs barely one seek, so
    per-range-query random access hasn't amortized yet; the paper-scale
    claim (strict win) is asserted from 'default' scale up."""
    return 1.35 if bench_scale() == "quick" else 1.0


@pytest.mark.parametrize(
    "distribution", ["independent", "correlated", "anticorrelated"]
)
def test_fig5(figure_runner, distribution):
    report = figure_runner(fig5_scalability, distribution=distribution)
    times = report.series["time_ms"]

    # CBCS (aMPR) beats the Baseline on average at the largest size.
    assert last(times["aMPR"]) < last(times["Baseline"]) * time_tolerance()
    # Stable cases are the cheap ones.
    if not math.isnan(last(times["aMPR (Stable)"])):
        assert last(times["aMPR (Stable)"]) <= last(times["aMPR"]) * 1.25

    reads = report.series["points_read"]
    # The core mechanism: the cache cuts points read from disk.
    assert last(reads["aMPR"]) < last(reads["Baseline"])


def test_fig5_bbs_not_better_than_baseline_on_independent(figure_runner):
    """Paper: 'BBS performs worse than Baseline ... consistently for
    independent data'."""
    report = figure_runner(fig5_scalability, distribution="independent", seed=3)
    times = report.series["time_ms"]
    assert last(times["BBS"]) > last(times["Baseline"]) * 0.8
