"""Figure 7: efficiency with increasing dimensionality.

Paper result: all methods deteriorate as |D| grows (skylines get bigger and
pruning gets weaker), with CBCS/aMPR still ahead of the Baseline on the
exploratory workload.
"""

import math

from repro.bench.experiments import fig7_dimensionality
from repro.bench.harness import bench_scale


def finite(values):
    return [v for v in values if not math.isnan(v)]


def test_fig7(figure_runner):
    report = figure_runner(fig7_dimensionality)
    times = report.series["time_ms"]

    # Costs grow with dimensionality for the non-cached methods.
    base = finite(times["Baseline"])
    assert base[-1] > base[0]

    # aMPR still wins on average at the highest dimensionality measured.
    # (At quick scale the Baseline fetch is a single cheap seek, so the
    # strict win is asserted from 'default' scale up; see test_fig5.)
    tolerance = 1.4 if bench_scale() == "quick" else 1.0
    ampr = finite(times["aMPR"])
    assert ampr[-1] < base[-1] * tolerance

    # The cache's stable-case advantage holds at every scale.
    stable = finite(times["aMPR (Stable)"])
    assert stable[-1] < base[-1]
