"""Figure 6: exact MPR vs aMPR (independent, |D|=3, interactive).

Paper result: both cache-based variants beat Baseline; stable-case exact
MPR is the cheapest of all (it prunes the most), while unstable exact MPR
suffers from the many invalidation range queries.
"""

import math

from repro.bench.experiments import fig6_mpr_vs_ampr


def last(values):
    finite = [v for v in values if not math.isnan(v)]
    return finite[-1] if finite else float("nan")


def test_fig6(figure_runner):
    report = figure_runner(fig6_mpr_vs_ampr)
    times = report.series["time_ms"]
    reads = report.series["points_read"]

    assert last(times["aMPR"]) < last(times["Baseline"])
    assert last(times["MPR"]) < last(times["Baseline"])

    # The exact MPR is minimal: it never reads more points than the aMPR,
    # and both read fewer than Baseline.
    assert last(reads["MPR"]) <= last(reads["aMPR"]) + 1e-9
    assert last(reads["aMPR"]) < last(reads["Baseline"])
