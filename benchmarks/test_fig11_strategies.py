"""Figure 11: cache search strategies (interactive and independent).

Paper result: overlap-guided strategies clearly beat Random;
PrioritizednD(Bad) demonstrates that mis-weighted case scores hurt.
Exact strategy rankings vary with scale and noise, so the assertions stay
on the paper's robust claims.
"""

import pytest

from repro.bench.experiments import fig11_strategies


@pytest.mark.parametrize("workload", ["interactive", "independent"])
def test_fig11(figure_runner, workload):
    report = figure_runner(fig11_strategies, workload=workload)
    means = {name: s["mean"] for name, s in report.series.items()}

    # Overlap as a guiding factor beats blind choice (paper: "there is a
    # clear benefit in using overlap as a guiding factor").
    overlap_best = min(means["MaxOverlap"], means["MaxOverlapSP"])
    assert overlap_best <= means["Random"] * 1.1

    # All strategies answered the full workload.
    expected = 6 if workload == "independent" else 7
    assert len(means) == expected
