"""Shared pytest-benchmark configuration for the figure benchmarks.

Each module regenerates one figure of the paper via
:mod:`repro.bench.experiments`; the benchmark value is the wall-clock of the
whole experiment and ``extra_info`` carries the figure's numbers.  Scale is
controlled by ``REPRO_BENCH_SCALE`` (quick/default/full; default quick).
"""

import json

import pytest


def run_figure(benchmark, experiment, **kwargs):
    """Run ``experiment`` once under the benchmark timer and attach its
    structured series to the benchmark record."""
    report = benchmark.pedantic(
        lambda: experiment(**kwargs), rounds=1, iterations=1
    )
    benchmark.extra_info["figure"] = report.figure
    benchmark.extra_info["series"] = json.loads(json.dumps(report.series, default=float))
    return report


@pytest.fixture()
def figure_runner(benchmark):
    def runner(experiment, **kwargs):
        return run_figure(benchmark, experiment, **kwargs)

    return runner
