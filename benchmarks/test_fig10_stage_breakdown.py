"""Figure 10: per-stage cost (processing / fetching / skyline) by case.

Paper result: Baseline has no processing stage but long fetching; aMPR
case 2 (upper bound decreased) has no fetching or skyline stage at all;
case 3 fetches significantly less than case 1 thanks to dominance pruning.
"""

from repro.bench.experiments import fig10_stage_breakdown


def test_fig10(figure_runner):
    report = figure_runner(fig10_stage_breakdown)
    stages = report.series["stages"]

    # "Baseline has no processing stage, but suffers long fetching."
    assert stages["Baseline"]["processing"] == 0.0
    assert stages["Baseline"]["fetching"] > 0.0

    # "aMPR Case 2 has no fetching stage or computation stage."
    if "aMPR Case 2" in stages:
        assert stages["aMPR Case 2"]["fetching"] < 1.0
        assert stages["aMPR Case 2"]["skyline"] < 1.0

    # "aMPR Case 3 shows ... a significantly smaller fetching stage than
    # both Baseline and aMPR Case 1."
    if "aMPR Case 3" in stages and "aMPR Case 1" in stages:
        assert stages["aMPR Case 3"]["fetching"] < stages["Baseline"]["fetching"]
        assert stages["aMPR Case 3"]["fetching"] <= stages["aMPR Case 1"]["fetching"] * 1.5
