"""Figure 12: the Danish real-estate workload (synthetic substitute, 4-D).

Paper result (interactive): aMPR is superior to both Baseline and BBS, with
BBS several times slower than Baseline.  (Independent): performance depends
strongly on the number of aMPR neighbours; BBS is the stable-but-slow
reference.
"""

import pytest

from repro.bench.experiments import fig12_real_data


def test_fig12a_interactive(figure_runner):
    report = figure_runner(fig12_real_data, workload="interactive")
    means = {name: s["mean"] for name, s in report.series.items()}

    # aMPR beats Baseline, Baseline beats BBS (paper: BBS ~2.2s vs
    # Baseline ~0.45s vs aMPR below both).
    assert means["aMPR"] < means["Baseline"]
    assert means["Baseline"] < means["BBS"]

    # Stable cases are cheap.
    assert means["aMPR (Stable)"] <= means["aMPR"] * 1.25


def test_fig12b_independent(figure_runner):
    report = figure_runner(fig12_real_data, workload="independent")
    means = {name: s["mean"] for name, s in report.series.items()}

    # All three aMPR variants ran, and every cache-based variant beats BBS
    # on this workload (the paper's 5/10-NN variants "greatly outperform"
    # BBS; at reduced scale we assert the weaker common claim).
    for k in (1, 5, 10):
        assert f"aMPR ({k}p)" in means
        assert means[f"aMPR ({k}p)"] < means["BBS"]
